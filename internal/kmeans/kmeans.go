// Package kmeans implements Lloyd's k-means (Hartigan & Wong lineage) with
// k-means++ seeding. It is the partitioning-based baseline of the paper's
// Table IV clustering-validation experiment.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dbsvec/internal/cluster"
	"dbsvec/internal/dist"
	"dbsvec/internal/vec"
)

// Params configures a run.
type Params struct {
	// K is the number of clusters. Must be >= 1 and <= n.
	K int
	// MaxIter caps Lloyd iterations; 0 selects 100.
	MaxIter int
	// Tol stops iteration when total center movement falls below it;
	// 0 selects 1e-6.
	Tol float64
	// Seed drives k-means++ seeding.
	Seed int64
}

// Stats reports work performed.
type Stats struct {
	// Iterations is the number of Lloyd rounds executed.
	Iterations int
	// Inertia is the final sum of squared distances to assigned centers.
	Inertia float64
}

// Errors.
var (
	ErrNilDataset = errors.New("kmeans: nil dataset")
	ErrBadK       = errors.New("kmeans: k out of range")
)

// Run clusters ds into K groups and returns labels, the final centers, and
// statistics.
func Run(ds *vec.Dataset, p Params) (*cluster.Result, [][]float64, Stats, error) {
	var st Stats
	if ds == nil {
		return nil, nil, st, ErrNilDataset
	}
	n, d := ds.Len(), ds.Dim()
	if p.K < 1 || p.K > n {
		return nil, nil, st, fmt.Errorf("%w: k=%d n=%d", ErrBadK, p.K, n)
	}
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	tol := p.Tol
	if tol == 0 {
		tol = 1e-6
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Centers live in one flat row-major slice so the assignment step can
	// run the batched nearest-center kernel over them as a dist.Matrix.
	centers := seedPlusPlus(ds, p.K, rng)
	centersM := dist.Matrix{Coords: centers, Dim: d}
	labels := make([]int32, n)
	counts := make([]int, p.K)
	sums := make([]float64, p.K*d)

	for iter := 0; iter < maxIter; iter++ {
		st.Iterations = iter + 1
		// Assignment step.
		st.Inertia = 0
		for i := 0; i < n; i++ {
			best, bestD := dist.Nearest(centersM, ds.Point(i))
			labels[i] = int32(best)
			st.Inertia += bestD
		}
		// Update step.
		for c := range counts {
			counts[c] = 0
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := 0; i < n; i++ {
			c := int(labels[i])
			counts[c]++
			pt := ds.Point(i)
			for j := 0; j < d; j++ {
				sums[c*d+j] += pt[j]
			}
		}
		var moved float64
		for c := 0; c < p.K; c++ {
			row := centers[c*d : (c+1)*d]
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(row, ds.Point(rng.Intn(n)))
				moved += tol + 1
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < d; j++ {
				nv := sums[c*d+j] * inv
				moved += math.Abs(nv - row[j])
				row[j] = nv
			}
		}
		if moved < tol {
			break
		}
	}
	res := &cluster.Result{Labels: labels, Clusters: p.K}
	out := make([][]float64, p.K)
	for c := 0; c < p.K; c++ {
		out[c] = append([]float64(nil), centers[c*d:(c+1)*d]...)
	}
	return res, out, st, nil
}

// seedPlusPlus picks K initial centers with k-means++ (D² sampling) and
// returns them as one flat row-major slice of length k*d.
func seedPlusPlus(ds *vec.Dataset, k int, rng *rand.Rand) []float64 {
	n, d := ds.Len(), ds.Dim()
	centers := make([]float64, 0, k*d)
	centers = append(centers, ds.Point(rng.Intn(n))...)

	dist2 := make([]float64, n)
	ds.SqDistsToAll(centers[:d], dist2)
	for len(centers) < k*d {
		var total float64
		for _, dd := range dist2 {
			total += dd
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n) // all remaining points coincide with centers
		} else {
			target := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, dd := range dist2 {
				acc += dd
				if acc >= target {
					idx = i
					break
				}
			}
		}
		centers = append(centers, ds.Point(idx)...)
		c := centers[len(centers)-d:]
		if m32 := ds.Matrix32(); m32.Coords != nil {
			dist.MinSqDistsToAll32(m32, c, dist2)
		} else {
			dist.MinSqDistsToAll(ds.Matrix(), c, dist2)
		}
	}
	return centers
}
