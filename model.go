package dbsvec

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dbsvec/internal/cluster"
	"dbsvec/internal/core"
	"dbsvec/internal/data"
	"dbsvec/internal/dist"
	"dbsvec/internal/engine"
	"dbsvec/internal/fault"
	"dbsvec/internal/svdd"
)

// ErrMalformed is wrapped by every rejection of a malformed model stream in
// LoadModel / LoadOneClass, so errors.Is(err, ErrMalformed) classifies any
// decode failure regardless of the specific corruption.
var ErrMalformed = data.ErrMalformed

// Model is the durable artifact of a clustering run: the run parameters
// that define assignment semantics (ε, MinPts, dimensionality, cluster
// count) plus every per-sub-cluster SVDD boundary the run trained, one
// snapshot per training round. A Model is self-contained — the snapshots
// carry their own support-vector coordinates — so it can be saved, loaded
// in a fresh process, and used to Assign new points without the training
// dataset.
type Model struct {
	art *data.ModelArtifact

	planOnce sync.Once
	plan     *assignPlan
}

// Model returns the run's retained model artifact: the input to Save,
// Assign, and Options.WarmFrom. It is nil only when the Result was not
// produced by Cluster/ClusterContext (e.g. the zero Result).
func (r *Result) Model() *Model { return r.model }

func newModel(d *Dataset, opts Options, res *cluster.Result, retained []core.RetainedModel) *Model {
	return newModelDims(d.Dim(), d.Precision(), opts, res, retained)
}

// Dim returns the dimensionality the model was trained in.
func (m *Model) Dim() int { return m.art.Dim }

// Precision returns the storage precision of the training dataset. Models
// saved before precision existed in the format load as PrecisionF64.
func (m *Model) Precision() Precision {
	if m.art.Precision == data.ModelPrecisionF32 {
		return PrecisionF32
	}
	return PrecisionF64
}

// Eps returns the ε radius of the training run.
func (m *Model) Eps() float64 { return m.art.Eps }

// MinPts returns the density threshold of the training run.
func (m *Model) MinPts() int { return m.art.MinPts }

// Clusters returns the number of clusters of the training run.
func (m *Model) Clusters() int { return m.art.Clusters }

// Snapshots returns the number of retained SVDD snapshots.
func (m *Model) Snapshots() int {
	n := 0
	for i := range m.art.Entries {
		if m.art.Entries[i].Snap != nil {
			n++
		}
	}
	return n
}

// SupportVectors returns the total number of support vectors across every
// retained snapshot — the size of the boundary description Assign evaluates.
func (m *Model) SupportVectors() int {
	n := 0
	for i := range m.art.Entries {
		if s := m.art.Entries[i].Snap; s != nil {
			n += s.SVCount()
		}
	}
	return n
}

// DegradedClusters returns the sorted ids of clusters that hit the exact
// range-query expansion fallback during training (see Stats.Degraded): their
// boundaries are either best-effort or absent, so Assign decisions near them
// lean on the nearest-cluster fallback.
func (m *Model) DegradedClusters() []int32 {
	seen := make(map[int32]bool)
	var ids []int32
	for i := range m.art.Entries {
		e := &m.art.Entries[i]
		if e.Degraded && !seen[e.Cluster] {
			seen[e.Cluster] = true
			ids = append(ids, e.Cluster)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// snapshots gathers the non-nil snapshots, the warm-restart source format
// core.Options.WarmModels consumes.
func (m *Model) snapshots() []*svdd.Snapshot {
	var snaps []*svdd.Snapshot
	for i := range m.art.Entries {
		if s := m.art.Entries[i].Snap; s != nil {
			snaps = append(snaps, s)
		}
	}
	return snaps
}

// Save streams the model to w in the versioned binary model format. The
// encoding is canonical: saving a loaded model reproduces the original
// bytes exactly.
func (m *Model) Save(w io.Writer) error {
	if m == nil || m.art == nil {
		return fmt.Errorf("dbsvec: nil model")
	}
	return data.WriteModel(w, m.art)
}

// LoadModel reads a clustering model saved with Model.Save. Malformed input
// is rejected with an error wrapping ErrMalformed; a one-class artifact is
// rejected too (use LoadOneClass).
func LoadModel(r io.Reader) (*Model, error) {
	art, err := data.ReadModel(r)
	if err != nil {
		return nil, err
	}
	if art.Kind != data.ModelKindClustering {
		return nil, fmt.Errorf("%w: artifact is not a clustering model (kind %d)", ErrMalformed, art.Kind)
	}
	return &Model{art: art}, nil
}

// assignPlan is the flattened evaluation state Assign builds once per Model:
// all support vectors concatenated into one matrix so a single batched
// distance pass per query point serves every boundary evaluation and the
// nearest-vector fallback.
type assignPlan struct {
	svs     dist.Matrix // every SV of every snapshot, row-major
	alpha   []float64   // multiplier per SV row
	cluster []int32     // owning final cluster id per SV row
	entries []planEntry
	eps2    float64
}

// planEntry is one snapshot's slice of the plan.
type planEntry struct {
	lo, hi  int     // SV row range [lo, hi)
	gamma   float64 // 1 / (2σ²)
	bias    float64 // 1 + αᵀKα − R²: Eval(x) = bias − 2Σᵢ αᵢ·exp(−‖x−xᵢ‖²·γ)
	cluster int32
}

func (m *Model) assignPlan() *assignPlan {
	m.planOnce.Do(func() {
		p := &assignPlan{
			svs:  dist.Matrix{Dim: m.art.Dim},
			eps2: m.art.Eps * m.art.Eps,
		}
		for i := range m.art.Entries {
			e := &m.art.Entries[i]
			s := e.Snap
			if s == nil {
				continue
			}
			lo := len(p.alpha)
			p.svs.Coords = append(p.svs.Coords, s.Coords...)
			p.alpha = append(p.alpha, s.Alpha...)
			for range s.IDs {
				p.cluster = append(p.cluster, e.Cluster)
			}
			p.entries = append(p.entries, planEntry{
				lo:      lo,
				hi:      len(p.alpha),
				gamma:   1 / (2 * s.Sigma * s.Sigma),
				bias:    1 + s.AlphaDot - s.R2,
				cluster: e.Cluster,
			})
		}
		m.plan = p
	})
	return m.plan
}

// CheckAssignable validates up front that the points of d can be classified
// by this model: the model must be non-nil and the dimensionalities must
// match. Every rejection wraps ErrInvalidParams, so callers (the CLI, the
// serving daemon) can classify the failure before any assignment work runs
// instead of discovering it mid-batch.
func (m *Model) CheckAssignable(d *Dataset) error {
	if m == nil || m.art == nil {
		return fmt.Errorf("%w: nil model", core.ErrInvalidParams)
	}
	if d == nil {
		return core.ErrNilDataset
	}
	if d.Dim() != m.art.Dim && d.Len() > 0 {
		return fmt.Errorf("%w: cannot assign %d-dimensional points with a %d-dimensional model", core.ErrInvalidParams, d.Dim(), m.art.Dim)
	}
	return nil
}

// Assign classifies each point of d against the retained boundaries and
// returns one label per point: the cluster whose SVDD boundary contains the
// point (the most-interior boundary wins when several do; ties break to the
// lower cluster id), else — nearest-cluster fallback — the cluster of the
// nearest retained support vector when that vector lies within ε, else
// Noise.
//
// The batch fans across workers goroutines (0 selects all CPUs, 1 runs
// sequentially) with deterministic range partitioning and per-point
// independent work, so the labels are bit-identical for every worker count.
func (m *Model) Assign(d *Dataset, workers int) ([]int32, error) {
	return m.AssignContext(context.Background(), d, workers)
}

// assignCtxMask is the per-worker cancellation poll interval of the assign
// fan-out: ctx.Err() is checked every assignCtxMask+1 points, so a deadline
// or cancel aborts a batch within a bounded slice of work instead of after
// it. Must be a power of two minus one.
const assignCtxMask = 63

// AssignContext is Assign with cancellation: when ctx is cancelled or its
// deadline fires mid-batch, every worker stops within its next poll window
// (64 points), the fan-out drains, and ctx's error is returned with nil
// labels. No goroutines outlive the call.
func (m *Model) AssignContext(ctx context.Context, d *Dataset, workers int) ([]int32, error) {
	return m.assignContext(ctx, d, workers, (*assignPlan).assign)
}

// AssignNearestContext is the degraded assignment path: each point gets the
// cluster of its nearest retained support vector when that vector lies
// within ε, Noise otherwise — the fallback half of Assign alone, skipping
// every SVDD boundary evaluation. One batched distance pass per point
// remains, but the per-support-vector exp() work is gone, which is what the
// serving daemon sheds under sustained overload. Labels agree with Assign
// everywhere Assign itself falls back; points inside a boundary may differ.
func (m *Model) AssignNearestContext(ctx context.Context, d *Dataset, workers int) ([]int32, error) {
	return m.assignContext(ctx, d, workers, (*assignPlan).assignNearest)
}

func (m *Model) assignContext(ctx context.Context, d *Dataset, workers int, score func(*assignPlan, []float64, []float64) int32) ([]int32, error) {
	if err := m.CheckAssignable(d); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan := m.assignPlan()
	labels := make([]int32, d.Len())
	mat := d.ds.Matrix()
	var stop atomic.Bool
	engine.ForRanges(engine.ResolveWorkers(workers), d.Len(), nil, func(lo, hi int) {
		fault.PanicNow(fault.AssignPanic)
		d2 := make([]float64, plan.svs.Len())
		for i := lo; i < hi; i++ {
			if (i-lo)&assignCtxMask == 0 && (stop.Load() || ctx.Err() != nil) {
				stop.Store(true)
				return
			}
			labels[i] = score(plan, mat.Row(i), d2)
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return labels, nil
}

// assign scores one point. d2 is the caller's scratch buffer for the squared
// distances to every support vector (one batched pass serves all boundary
// evaluations and the fallback).
func (p *assignPlan) assign(q []float64, d2 []float64) int32 {
	if len(d2) == 0 {
		return Noise
	}
	dist.SqDistsToAll(p.svs, q, d2)
	best := math.Inf(1)
	bestCluster := cluster.Noise
	for _, e := range p.entries {
		var s float64
		for i := e.lo; i < e.hi; i++ {
			s += p.alpha[i] * math.Exp(-d2[i]*e.gamma)
		}
		score := e.bias - 2*s
		if score < best || (score == best && e.cluster < bestCluster) {
			best = score
			bestCluster = e.cluster
		}
	}
	if best <= 0 {
		return bestCluster
	}
	return p.nearestWithinEps(d2)
}

// assignNearest scores one point on the degraded path: the nearest-SV
// fallback alone, no boundary evaluations. d2 is the caller's scratch buffer
// as in assign.
func (p *assignPlan) assignNearest(q []float64, d2 []float64) int32 {
	if len(d2) == 0 {
		return cluster.Noise
	}
	dist.SqDistsToAll(p.svs, q, d2)
	return p.nearestWithinEps(d2)
}

// nearestWithinEps attaches to the cluster of the nearest support vector if
// it is ε-close, mirroring how border points attach to core neighborhoods
// during clustering; Noise otherwise. d2 must be non-empty.
func (p *assignPlan) nearestWithinEps(d2 []float64) int32 {
	ni, nd := 0, d2[0]
	for i := 1; i < len(d2); i++ {
		if d2[i] < nd {
			ni, nd = i, d2[i]
		}
	}
	if nd <= p.eps2 {
		return p.cluster[ni]
	}
	return cluster.Noise
}
