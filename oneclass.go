package dbsvec

import (
	"errors"
	"fmt"
	"io"

	"dbsvec/internal/data"
	"dbsvec/internal/engine"
	"dbsvec/internal/svdd"
	"dbsvec/internal/vec"
)

// OneClassOptions configures TrainOneClass.
type OneClassOptions struct {
	// Nu in (0,1] bounds the fraction of training points allowed outside
	// the learned boundary (boundary support vectors) from above and the
	// support-vector fraction from below. 0 selects 0.1.
	Nu float64
	// Sigma is the Gaussian kernel width; 0 selects the paper's σ = r/√2
	// rule over the training set (Section IV-B2).
	Sigma float64
	// Workers fans the kernel-matrix fill across this many goroutines with
	// output bit-identical to the serial fill. 0 selects all CPUs, 1 runs
	// sequentially.
	Workers int
	// MaxIter caps the SMO iterations; 0 selects the solver default
	// (200·n + 10000). A truncated solve returns the best iterate together
	// with ErrNotConverged.
	MaxIter int
	// Tol is the KKT violation tolerance; 0 selects 1e-4.
	Tol float64
}

// OneClassModel is a trained Support Vector Domain Description: a minimal
// hypersphere (in Gaussian-kernel feature space) enclosing most of the
// training data. It is the building block DBSVEC uses internally, exposed
// here as a standalone one-class learner for novelty/outlier detection.
type OneClassModel struct {
	m *svdd.Model
	// prec records the training dataset's storage precision for Save.
	prec byte
}

// TrainOneClass fits an SVDD boundary to every point of d.
//
// When the solver exhausts its iteration cap, the model is still returned —
// it is the best feasible iterate — together with ErrNotConverged; check
// Converged (or errors.Is against ErrNotConverged) to decide whether the
// truncated boundary is acceptable.
func TrainOneClass(d *Dataset, opts OneClassOptions) (*OneClassModel, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("dbsvec: one-class training needs a non-empty dataset")
	}
	nu := opts.Nu
	if nu == 0 {
		nu = 0.1
	}
	m, err := svdd.Train(d.ds, vec.Iota(d.Len()), svdd.Config{
		Nu:      nu,
		Sigma:   opts.Sigma,
		Workers: engine.ResolveWorkers(opts.Workers),
		MaxIter: opts.MaxIter,
		Tol:     opts.Tol,
	})
	if err != nil && !errors.Is(err, svdd.ErrNotConverged) && !errors.Is(err, svdd.ErrAllSupportVectors) {
		return nil, err
	}
	if m == nil {
		return nil, err
	}
	prec := data.ModelPrecisionF64
	if d.Precision() == PrecisionF32 {
		prec = data.ModelPrecisionF32
	}
	return &OneClassModel{m: m, prec: prec}, err
}

// Score returns the decision value for a point: negative or zero inside the
// learned boundary, positive outside, growing with distance (Eq. 12 of the
// paper, F(x) − R²).
func (oc *OneClassModel) Score(point []float64) float64 {
	return oc.m.Eval(point)
}

// Contains reports whether the point falls inside (or on) the boundary.
func (oc *OneClassModel) Contains(point []float64) bool {
	return oc.m.Eval(point) <= 0
}

// SupportVectors returns the indices (into the training dataset) of the
// points describing the boundary.
func (oc *OneClassModel) SupportVectors() []int32 {
	return oc.m.SupportVectors()
}

// Sigma returns the kernel width used.
func (oc *OneClassModel) Sigma() float64 { return oc.m.Sigma }

// Nu returns the penalty factor the training actually used.
func (oc *OneClassModel) Nu() float64 { return oc.m.Nu }

// Converged reports whether the solver reached the KKT tolerance; false
// means the iteration cap truncated training and the boundary is the best
// iterate found (TrainOneClass also returned ErrNotConverged).
func (oc *OneClassModel) Converged() bool { return oc.m.Converged }

// Iterations returns the number of SMO pair updates the solve performed.
func (oc *OneClassModel) Iterations() int { return oc.m.Iterations }

// Precision returns the storage precision of the training dataset (recorded
// in saved models; files from before the field existed load as PrecisionF64).
func (oc *OneClassModel) Precision() Precision {
	if oc.prec == data.ModelPrecisionF32 {
		return PrecisionF32
	}
	return PrecisionF64
}

// Save streams the model to w in the same versioned binary format as
// clustering model artifacts (one snapshot, kind "one-class"). The encoding
// is canonical: save → load → save is byte-identical.
func (oc *OneClassModel) Save(w io.Writer) error {
	if oc == nil || oc.m == nil {
		return fmt.Errorf("dbsvec: nil one-class model")
	}
	snap := oc.m.Snapshot()
	return data.WriteModel(w, &data.ModelArtifact{
		Kind:      data.ModelKindOneClass,
		Precision: oc.prec,
		Dim:       snap.Dim,
		Entries:   []data.ModelEntry{{Snap: snap}},
	})
}

// LoadOneClass reads a one-class model saved with OneClassModel.Save. The
// loaded model is detached — it carries its own support-vector coordinates —
// so Score, Contains, SupportVectors and the solve metadata all work without
// the training dataset. Malformed input is rejected with an error wrapping
// ErrMalformed; a clustering artifact is rejected too (use LoadModel).
func LoadOneClass(r io.Reader) (*OneClassModel, error) {
	art, err := data.ReadModel(r)
	if err != nil {
		return nil, err
	}
	if art.Kind != data.ModelKindOneClass {
		return nil, fmt.Errorf("%w: artifact is not a one-class model (kind %d)", ErrMalformed, art.Kind)
	}
	m, err := svdd.FromSnapshot(art.Entries[0].Snap)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	return &OneClassModel{m: m, prec: art.Precision}, nil
}
