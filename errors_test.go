package dbsvec

import (
	"errors"
	"testing"

	"dbsvec/internal/fault"
)

// TestErrorTaxonomyThroughCluster: a worker panic injected into the
// clustering fan-out surfaces from the public Cluster as a typed
// *WorkerPanicError (errors.As), with the worker's stack attached — the
// public face of the engine's panic containment.
func TestErrorTaxonomyThroughCluster(t *testing.T) {
	ds := blobDataset(t, 800, 2, 2, 33)
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.WorkerPanic, fault.Nth(1)))
	defer restore()
	res, err := Cluster(ds, Options{Eps: 3, MinPts: 8, Workers: 4, Seed: 3})
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("Cluster under injected worker panic: err = %v, want *WorkerPanicError", err)
	}
	if len(wp.Stack) == 0 {
		t.Error("worker panic lost its originating stack")
	}
	if res != nil {
		t.Error("worker panic must not return a result")
	}
}

// TestErrorTaxonomyThroughSharded: the same taxonomy flows through the
// sharded runner's per-shard wrapping — budget trips keep errors.As
// *BudgetExceededError (with a usable partial clustering), worker panics
// keep errors.As *WorkerPanicError.
func TestErrorTaxonomyThroughSharded(t *testing.T) {
	ds := blobDataset(t, 2000, 2, 3, 35)

	res, err := RunSharded(ds, Options{
		Eps: 3, MinPts: 8, Seed: 3, Shards: 2,
		Budget: Budget{MaxRangeQueries: 5},
	})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("sharded budget trip: err = %v, want *BudgetExceededError", err)
	}
	if be.RangeQueries < 5 {
		t.Errorf("budget snapshot %+v, want >= 5 range queries", be)
	}
	if res == nil {
		t.Fatal("sharded budget trip must still return the partial clustering")
	}
	for i, l := range res.Labels {
		if l != Noise && (l < 0 || int(l) >= res.Clusters) {
			t.Fatalf("partial label[%d] = %d outside [0, %d) ∪ {Noise}", i, l, res.Clusters)
		}
	}

	restore := fault.Activate(fault.NewInjector(1).Arm(fault.WorkerPanic, fault.Nth(1)))
	defer restore()
	_, err = RunSharded(ds, Options{Eps: 3, MinPts: 8, Seed: 3, Shards: 2, Workers: 4})
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("sharded worker panic: err = %v, want *WorkerPanicError", err)
	}
}
