module dbsvec

go 1.22
