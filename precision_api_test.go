package dbsvec

import (
	"bytes"
	"math/rand"
	"testing"
)

// gaussRows draws three well-separated Gaussian blobs with full-precision
// coordinates, so the F32 conversion below performs a genuine quantization.
func gaussRows(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{0, 0}, {60, 0}, {30, 60}}
	rows := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		rows = append(rows, []float64{c[0] + rng.NormFloat64()*2, c[1] + rng.NormFloat64()*2})
	}
	return rows
}

// TestPrecisionModesAgree is the end-to-end acceptance pin of float32
// storage: the same clustering run in f64 and f32 mode must produce
// near-identical partitions (ARI >= 0.999). Quantization moves coordinates
// by parts in 2^24, far below any cluster separation scale, so only a
// vanishing fraction of borderline eps decisions may flip.
func TestPrecisionModesAgree(t *testing.T) {
	base, err := NewDataset(gaussRows(1500, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Pin the f64 side explicitly so the test also holds under a
	// DBSVEC_PRECISION=f32 process default (constructors then quantize, and
	// the comparison degenerates to two runs over the same quantized data).
	ds, err := base.ToPrecision(PrecisionF64)
	if err != nil {
		t.Fatal(err)
	}
	ds32, err := ds.ToPrecision(PrecisionF32)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Precision() != PrecisionF64 || ds32.Precision() != PrecisionF32 {
		t.Fatalf("precisions = %v / %v", ds.Precision(), ds32.Precision())
	}
	opts := Options{Eps: 4, MinPts: 8, Seed: 6}
	res64, err := Cluster(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	res32, err := Cluster(ds32, opts)
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(res64, res32)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.999 {
		t.Fatalf("f64 vs f32 clustering ARI = %v, want >= 0.999", ari)
	}
	if res32.Clusters != res64.Clusters {
		t.Errorf("cluster counts differ: f32 %d, f64 %d", res32.Clusters, res64.Clusters)
	}

	// The model artifact records the storage mode it was trained in, and the
	// round-trip through the codec preserves it.
	m := res32.Model()
	if m == nil {
		t.Fatal("no model on result")
	}
	if m.Precision() != PrecisionF32 {
		t.Fatalf("model precision = %v, want f32", m.Precision())
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Precision() != PrecisionF32 {
		t.Fatalf("loaded model precision = %v, want f32", loaded.Precision())
	}

	// Every index backend agrees with the default in f32 mode too.
	for _, kind := range []IndexKind{IndexKDTree, IndexGrid, IndexParallel} {
		res, err := Cluster(ds32, Options{Eps: 4, MinPts: 8, Seed: 6, Index: kind})
		if err != nil {
			t.Fatalf("index %v: %v", kind, err)
		}
		ari, err := ARI(res32, res)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 0.999 {
			t.Fatalf("index %v: ARI vs default %v, want >= 0.999", kind, ari)
		}
	}
}

// TestDeterminismWithinPrecisionMode: within one storage mode a repeated run
// with the same seed is exactly reproducible — f32 storage keeps the
// repository's determinism contract intact.
func TestDeterminismWithinPrecisionMode(t *testing.T) {
	ds, err := NewDataset(gaussRows(800, 7))
	if err != nil {
		t.Fatal(err)
	}
	ds32, err := ds.ToPrecision(PrecisionF32)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Eps: 4, MinPts: 8, Seed: 7}
	a, err := Cluster(ds32, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(ds32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Labels) != len(b.Labels) {
		t.Fatal("label lengths differ")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d differs between identical f32 runs", i)
		}
	}
}
