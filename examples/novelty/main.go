// Novelty: use the library's SVDD engine directly as a one-class learner.
// A boundary is trained on a reference window of normal observations; new
// observations are scored against it — the standalone use of the same
// support-vector machinery DBSVEC uses to expand clusters.
//
// Run with:
//
//	go run ./examples/novelty
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"

	"dbsvec"
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Reference window: a banana-shaped normal region (one-class methods
	// must handle non-elliptic shapes; that is SVDD's selling point).
	train := make([][]float64, 0, 600)
	for i := 0; i < 600; i++ {
		theta := rng.Float64() * math.Pi
		r := 10 + rng.NormFloat64()*0.8
		train = append(train, []float64{r * math.Cos(theta), r * math.Sin(theta)})
	}
	ds, err := dbsvec.NewDataset(train)
	if err != nil {
		log.Fatal(err)
	}

	model, err := dbsvec.TrainOneClass(ds, dbsvec.OneClassOptions{Nu: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d points, %d support vectors, sigma=%.2f\n",
		ds.Len(), len(model.SupportVectors()), model.Sigma())

	// Probe points: on the banana, at its center of curvature (a hole —
	// outside the data's support), and far away.
	probes := []struct {
		name string
		p    []float64
	}{
		{"on the band", []float64{10, 0.5}},
		{"top of the band", []float64{0, 10}},
		{"inside the hole", []float64{0, 2}},
		{"far away", []float64{40, -20}},
	}
	for _, pr := range probes {
		fmt.Printf("%-18s score=%+.4f normal=%v\n", pr.name, model.Score(pr.p), model.Contains(pr.p))
	}

	// The default sigma = r/sqrt(2) is the paper's anti-overfitting lower
	// bound, which keeps the boundary loose — loose enough to cover the
	// banana's hole. A smaller sigma hugs the band tightly and exposes the
	// hole, at the risk of overfitting (Section IV-B2's trade-off).
	tight, err := dbsvec.TrainOneClass(ds, dbsvec.OneClassOptions{Nu: 0.05, Sigma: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntight model (sigma=3, %d support vectors):\n", len(tight.SupportVectors()))
	for _, pr := range probes {
		fmt.Printf("%-18s score=%+.4f normal=%v\n", pr.name, tight.Score(pr.p), tight.Contains(pr.p))
	}
	fmt.Println()

	// Batch evaluation: how well does the boundary separate held-out normal
	// points from scattered anomalies?
	normalOK, anomalyCaught := 0, 0
	const nHold = 300
	for i := 0; i < nHold; i++ {
		theta := rng.Float64() * math.Pi
		r := 10 + rng.NormFloat64()*0.8
		if model.Contains([]float64{r * math.Cos(theta), r * math.Sin(theta)}) {
			normalOK++
		}
		if !model.Contains([]float64{(rng.Float64() - 0.5) * 60, (rng.Float64() - 0.5) * 60}) {
			anomalyCaught++
		}
	}
	fmt.Printf("held-out normals accepted: %d/%d, uniform anomalies rejected: %d/%d\n",
		normalOK, nHold, anomalyCaught, nHold)

	// Render the tight model's decision region (the paper's Figure 3-style
	// boundary picture) to boundary.svg in the working directory.
	f, err := os.Create("boundary.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	err = dbsvec.WriteDecisionSVG(f, ds, nil, tight.Contains,
		dbsvec.PlotOptions{Title: "SVDD decision region (sigma=3)", PointRadius: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote boundary.svg")
}
