// Sensoranomaly: a high-dimensional scenario modeled on the paper's PAMAP2
// physical-activity-monitoring experiments. Each reading is a 17-dimensional
// sensor vector; normal operating modes form dense regions, and faults show
// up as density outliers. Grid-based DBSCAN approximations degrade sharply
// at this dimensionality (Figure 6b), while DBSVEC keeps working — this
// example demonstrates both the clustering and the noise-as-anomaly use.
//
// Run with:
//
//	go run ./examples/sensoranomaly
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dbsvec"
)

const dim = 17

func main() {
	readings, injected := generateReadings(8000, 25)
	ds, err := dbsvec.NewDataset(readings)
	if err != nil {
		log.Fatal(err)
	}
	// Normalize to the paper's coordinate range so eps has a stable meaning
	// regardless of raw sensor units.
	ds.Normalize(1e5)

	const (
		eps    = 9000.0
		minPts = 30
	)

	start := time.Now()
	res, err := dbsvec.Cluster(ds, dbsvec.Options{Eps: eps, MinPts: minPts})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("readings: %d (dim %d), operating modes found: %d, anomalies: %d, time: %v\n",
		ds.Len(), dim, res.Clusters, res.NoiseCount(), elapsed.Round(time.Millisecond))

	// How many of the injected faults were flagged as anomalies (noise)?
	caught := 0
	for _, idx := range injected {
		if res.Labels[idx] == dbsvec.Noise {
			caught++
		}
	}
	fmt.Printf("injected faults flagged as anomalies: %d/%d\n", caught, len(injected))

	// Exactness check against DBSCAN on the same data (Theorem 3 says the
	// noise sets should agree).
	exact, err := dbsvec.DBSCAN(ds, eps, minPts, dbsvec.IndexKDTree)
	if err != nil {
		log.Fatal(err)
	}
	agree, err := dbsvec.NoiseAgreement(res, exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noise agreement with exact DBSCAN: %.4f\n", agree)

	for id, size := range res.ClusterSizes() {
		fmt.Printf("  mode %d: %d readings\n", id, size)
	}
}

// generateReadings produces sensor vectors from a handful of operating
// modes (correlated Gaussian clusters) and injects isolated fault readings.
// It returns the rows and the indices of the injected faults.
func generateReadings(n, faults int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(11))
	modes := 4
	centers := make([][]float64, modes)
	for m := range centers {
		centers[m] = make([]float64, dim)
		for j := range centers[m] {
			centers[m][j] = rng.Float64() * 100
		}
	}
	rows := make([][]float64, 0, n+faults)
	for i := 0; i < n; i++ {
		c := centers[i%modes]
		r := make([]float64, dim)
		// Correlated noise: a shared drift term plus per-channel jitter,
		// mimicking real sensor packs.
		drift := rng.NormFloat64() * 1.5
		for j := 0; j < dim; j++ {
			r[j] = c[j] + drift + rng.NormFloat64()*2
		}
		rows = append(rows, r)
	}
	injected := make([]int, 0, faults)
	for i := 0; i < faults; i++ {
		r := make([]float64, dim)
		for j := range r {
			r[j] = -200 + rng.Float64()*500 // far outside every mode
		}
		injected = append(injected, len(rows))
		rows = append(rows, r)
	}
	return rows, injected
}
