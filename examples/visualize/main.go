// Visualize: regenerate the paper's Figure 1 — DBSCAN vs DBSVEC on the
// t4.8k analogue — as two SVG scatter plots written to the working
// directory (fig1_dbscan.svg, fig1_dbsvec.svg).
//
// Run with:
//
//	go run ./examples/visualize [-out .]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dbsvec"
	"dbsvec/internal/data"
)

func main() {
	out := flag.String("out", ".", "output directory for the SVG files")
	flag.Parse()

	// The t4.8k stand-in: 8000 2-D points in six arbitrary shapes over
	// uniform noise, with the paper's Figure 1 parameters.
	raw := data.Chameleon48K(1)
	rows := make([][]float64, raw.Len())
	for i := range rows {
		rows[i] = append([]float64(nil), raw.Point(i)...)
	}
	ds, err := dbsvec.NewDataset(rows)
	if err != nil {
		log.Fatal(err)
	}
	const (
		eps    = 8.5
		minPts = 20
	)

	exact, err := dbsvec.DBSCAN(ds, eps, minPts, dbsvec.IndexRTree)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := dbsvec.Cluster(ds, dbsvec.Options{Eps: eps, MinPts: minPts, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	recall, err := dbsvec.PairRecall(exact, approx)
	if err != nil {
		log.Fatal(err)
	}

	write := func(name, title string, res *dbsvec.Result) {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := dbsvec.WriteSVG(f, ds, res, dbsvec.PlotOptions{Title: title, PointRadius: 2}); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write("fig1_dbscan.svg", fmt.Sprintf("(a) DBSCAN on t4.8k — %d clusters", exact.Clusters), exact)
	write("fig1_dbsvec.svg", fmt.Sprintf("(b) DBSVEC on t4.8k — %d clusters", approx.Clusters), approx)
	fmt.Printf("clusters: dbscan=%d dbsvec=%d, pair recall=%.3f\n", exact.Clusters, approx.Clusters, recall)
}
