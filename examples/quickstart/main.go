// Quickstart: cluster a small 2-D dataset with DBSVEC and read the results.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dbsvec"
)

func main() {
	// Three Gaussian blobs plus scattered noise.
	rng := rand.New(rand.NewSource(42))
	var rows [][]float64
	centers := [][2]float64{{10, 10}, {50, 12}, {30, 45}}
	for _, c := range centers {
		for i := 0; i < 250; i++ {
			rows = append(rows, []float64{
				c[0] + rng.NormFloat64()*2,
				c[1] + rng.NormFloat64()*2,
			})
		}
	}
	for i := 0; i < 40; i++ {
		rows = append(rows, []float64{rng.Float64() * 60, rng.Float64() * 60})
	}

	ds, err := dbsvec.NewDataset(rows)
	if err != nil {
		log.Fatal(err)
	}

	// Eps and MinPts are the classic DBSCAN parameters; everything else
	// defaults to the paper's recommended settings (adaptive nu*, sigma =
	// r/sqrt(2), incremental learning threshold T = 3).
	res, err := dbsvec.Cluster(ds, dbsvec.Options{Eps: 3, MinPts: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("points: %d, clusters: %d, noise: %d\n", ds.Len(), res.Clusters, res.NoiseCount())
	for id, size := range res.ClusterSizes() {
		fmt.Printf("  cluster %d: %d points\n", id, size)
	}

	// Labels are parallel to the input rows; -1 (dbsvec.Noise) marks noise.
	fmt.Printf("first point label: %d, last point label: %d\n",
		res.Labels[0], res.Labels[len(res.Labels)-1])

	// Run statistics expose the paper's cost model: range queries issued is
	// far below one per point (what exact DBSCAN needs).
	fmt.Printf("range queries: %d (DBSCAN would need %d)\n",
		res.Stats.RangeQueries, ds.Len())
}
