// Comparison: run every algorithm in the library on one dataset and print a
// small scoreboard — runtime, cluster count, noise, and pair recall against
// exact DBSCAN. A miniature of the paper's evaluation, runnable in seconds.
//
// Run with:
//
//	go run ./examples/comparison [-n 30000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"dbsvec"
)

func main() {
	n := flag.Int("n", 30000, "dataset cardinality")
	flag.Parse()

	ds, err := dbsvec.NewDataset(generate(*n, 8))
	if err != nil {
		log.Fatal(err)
	}
	ds.Normalize(1e5)
	const (
		eps    = 5000.0
		minPts = 100
	)

	exact, exactTime, err := run("DBSCAN (R-tree)", func() (*dbsvec.Result, error) {
		return dbsvec.DBSCAN(ds, eps, minPts, dbsvec.IndexRTree)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-18s %10s %9s %8s %8s\n", "algorithm", "time", "clusters", "noise", "recall")
	report("DBSCAN (R-tree)", exact, exactTime, exact)

	algos := []struct {
		name string
		fn   func() (*dbsvec.Result, error)
	}{
		{"DBSVEC", func() (*dbsvec.Result, error) {
			return dbsvec.Cluster(ds, dbsvec.Options{Eps: eps, MinPts: minPts})
		}},
		{"DBSVEC_min", func() (*dbsvec.Result, error) {
			return dbsvec.Cluster(ds, dbsvec.Options{Eps: eps, MinPts: minPts, NuMin: true})
		}},
		{"rho-approx", func() (*dbsvec.Result, error) {
			return dbsvec.RhoApproximate(ds, dbsvec.RhoOptions{Eps: eps, MinPts: minPts})
		}},
		{"DBSCAN-LSH", func() (*dbsvec.Result, error) {
			return dbsvec.DBSCANLSH(ds, dbsvec.LSHOptions{Eps: eps, MinPts: minPts, Seed: 1})
		}},
		{"NQ-DBSCAN", func() (*dbsvec.Result, error) {
			return dbsvec.NQDBSCAN(ds, eps, minPts)
		}},
	}
	for _, a := range algos {
		res, elapsed, err := run(a.name, a.fn)
		if err != nil {
			log.Fatal(err)
		}
		report(a.name, res, elapsed, exact)
	}
}

func run(name string, fn func() (*dbsvec.Result, error)) (*dbsvec.Result, time.Duration, error) {
	start := time.Now()
	res, err := fn()
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", name, err)
	}
	return res, time.Since(start), nil
}

func report(name string, res *dbsvec.Result, elapsed time.Duration, exact *dbsvec.Result) {
	recall, err := dbsvec.PairRecall(exact, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %10s %9d %8d %8.3f\n",
		name, elapsed.Round(time.Millisecond), res.Clusters, res.NoiseCount(), recall)
}

// generate emits paper-style synthetic data: dense walker-spread regions in
// [0,1e5]^d plus a trace of uniform noise.
func generate(n, d int) [][]float64 {
	rng := rand.New(rand.NewSource(3))
	const span = 1e5
	rows := make([][]float64, 0, n)
	regions := 10
	per := n / regions
	pos := make([]float64, d)
	for r := 0; r < regions; r++ {
		for j := range pos {
			pos[j] = span * (0.05 + 0.9*rng.Float64())
		}
		for i := 0; i < per; i++ {
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				row[j] = pos[j] + rng.NormFloat64()*span/200
			}
			rows = append(rows, row)
			for j := range pos {
				pos[j] += (rng.Float64()*2 - 1) * span / 400
			}
		}
	}
	for len(rows) < n {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64() * span
		}
		rows = append(rows, row)
	}
	return rows
}
