// Geohotspots: a spatial-data-analysis scenario (the paper's motivating
// application). Points mimic geotagged activity along a road network with
// dense town centers; DBSVEC finds the hotspots, and the example
// cross-checks its output against exact DBSCAN with the pair-recall metric
// used in the paper's Table III.
//
// Run with:
//
//	go run ./examples/geohotspots
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"
	"time"

	"dbsvec"
)

func main() {
	rows := generateCity(20000, 7)
	ds, err := dbsvec.NewDataset(rows)
	if err != nil {
		log.Fatal(err)
	}

	const (
		eps    = 12.0
		minPts = 25
	)

	start := time.Now()
	fast, err := dbsvec.Cluster(ds, dbsvec.Options{Eps: eps, MinPts: minPts})
	if err != nil {
		log.Fatal(err)
	}
	fastTime := time.Since(start)

	start = time.Now()
	exact, err := dbsvec.DBSCAN(ds, eps, minPts, dbsvec.IndexRTree)
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(start)

	recall, err := dbsvec.PairRecall(exact, fast)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DBSVEC: %d hotspots, %d outliers, %v\n", fast.Clusters, fast.NoiseCount(), fastTime.Round(time.Millisecond))
	fmt.Printf("DBSCAN: %d hotspots, %d outliers, %v\n", exact.Clusters, exact.NoiseCount(), exactTime.Round(time.Millisecond))
	fmt.Printf("pair recall vs exact: %.4f\n", recall)
	fmt.Printf("range queries: dbsvec=%d dbscan=%d\n\n", fast.Stats.RangeQueries, exact.Stats.RangeQueries)

	// Rank hotspots by population and report their centroids — the kind of
	// output a spatial analyst actually wants.
	type hotspot struct {
		id     int
		size   int
		cx, cy float64
	}
	sums := make([]hotspot, fast.Clusters)
	for i, l := range fast.Labels {
		if l < 0 {
			continue
		}
		p := ds.Point(i)
		sums[l].id = int(l)
		sums[l].size++
		sums[l].cx += p[0]
		sums[l].cy += p[1]
	}
	sort.Slice(sums, func(a, b int) bool { return sums[a].size > sums[b].size })
	fmt.Println("top hotspots:")
	for i, h := range sums {
		if i == 5 {
			break
		}
		fmt.Printf("  #%d: %5d points around (%.1f, %.1f)\n",
			i+1, h.size, h.cx/float64(h.size), h.cy/float64(h.size))
	}
}

// generateCity scatters points along roads between town hubs, with dense
// disks at the towns themselves.
func generateCity(n, towns int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	hubs := make([][2]float64, towns)
	for i := range hubs {
		hubs[i] = [2]float64{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	rows := make([][]float64, 0, n)
	for i := 0; i < n/2; i++ { // town centers
		h := hubs[rng.Intn(towns)]
		r := 15 * math.Sqrt(rng.Float64())
		th := rng.Float64() * 2 * math.Pi
		rows = append(rows, []float64{h[0] + r*math.Cos(th), h[1] + r*math.Sin(th)})
	}
	for i := n / 2; i < n*19/20; i++ { // roads
		a, b := hubs[rng.Intn(towns)], hubs[rng.Intn(towns)]
		t := rng.Float64()
		rows = append(rows, []float64{
			a[0] + t*(b[0]-a[0]) + rng.NormFloat64()*2,
			a[1] + t*(b[1]-a[1]) + rng.NormFloat64()*2,
		})
	}
	for len(rows) < n { // sparse countryside noise
		rows = append(rows, []float64{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	return rows
}
