package dbsvec

import (
	"context"
	"fmt"
	"math"
	"time"

	"dbsvec/internal/cluster"
	"dbsvec/internal/core"
	"dbsvec/internal/engine"
	"dbsvec/internal/index"
	"dbsvec/internal/index/grid"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/index/pyramid"
	"dbsvec/internal/index/rproj"
	"dbsvec/internal/index/rtree"
	"dbsvec/internal/index/vptree"
	"dbsvec/internal/svdd"
)

// Budget bounds the work a Cluster run may perform; see the field docs on
// the core type. A run that trips a budget limit still returns a valid
// partial clustering together with a *BudgetExceededError.
type Budget = core.Budget

// BudgetExceededError reports which Budget limit fired; it accompanies a
// valid partial Result, not a nil one.
type BudgetExceededError = core.BudgetExceededError

// WorkerPanicError wraps a panic recovered from a worker goroutine (or the
// clustering run itself), carrying the panic value and the goroutine's
// stack. Cluster never crashes the process on an internal panic; it returns
// one of these.
type WorkerPanicError = engine.WorkerPanicError

// ErrInvalidParams is wrapped by every parameter-validation failure, so
// errors.Is(err, ErrInvalidParams) classifies any up-front rejection.
var ErrInvalidParams = core.ErrInvalidParams

// ErrNotConverged reports that an SVDD solve hit its iteration cap before
// reaching the KKT tolerance. TrainOneClass returns it alongside a usable
// (best-iterate) model; inside Cluster it triggers the exact-expansion
// fallback counted in Stats.Degraded.
var ErrNotConverged = svdd.ErrNotConverged

// Noise is the label assigned to noise points in Result.Labels.
const Noise int32 = cluster.Noise

// IndexKind selects the range-query backend for the algorithms that accept
// one.
type IndexKind int

// Supported index kinds.
const (
	// IndexLinear is the brute-force scan — DBSVEC's default, since it
	// needs no index structure.
	IndexLinear IndexKind = iota
	// IndexKDTree is a bulk-loaded kd-tree.
	IndexKDTree
	// IndexRTree is an STR bulk-loaded R*-tree (the paper's R-DBSCAN
	// ground-truth configuration).
	IndexRTree
	// IndexGrid is a cell grid of width eps/√d with exact query semantics.
	IndexGrid
	// IndexParallel is a linear scan fanned out across all CPUs — exact
	// semantics, zero build cost, lower wall-clock per query.
	IndexParallel
	// IndexPyramid is the Pyramid technique (cited by the paper via the
	// P⁺-tree) — exact range queries that stay effective in high
	// dimensional spaces.
	IndexPyramid
	// IndexVPTree is a vantage-point tree: metric pruning via the triangle
	// inequality, a strong exact backend in high dimensions.
	IndexVPTree
	// IndexRProj is the random-projection cell backend: points are binned
	// by quantized random projections at build time and cells are pruned at
	// query time with exact centroid/radius ball bounds — exact query
	// semantics, built for high-dimensional embedding-like data.
	IndexRProj
)

// builder resolves the backend's construction function. workers sizes the
// parallel bulk loads of the tree and grid backends (<= 0 selects all CPUs);
// every backend builds bit-identical structures for every worker count, so
// workers only affects build wall-clock, never clustering output.
func (k IndexKind) builder(eps float64, dim, workers int) (index.Builder, error) {
	switch k {
	case IndexLinear:
		return index.BuildLinear, nil
	case IndexKDTree:
		return kdtree.BuildWorkers(workers), nil
	case IndexRTree:
		return rtree.BuildWorkers(workers), nil
	case IndexGrid:
		w := eps
		if dim > 0 && eps > 0 {
			w = eps / math.Sqrt(float64(dim))
		}
		if w <= 0 {
			return nil, fmt.Errorf("dbsvec: grid index requires eps > 0")
		}
		return grid.BuildWidthWorkers(w, workers), nil
	case IndexParallel:
		return index.BuildParallel, nil
	case IndexPyramid:
		return pyramid.Build, nil
	case IndexVPTree:
		return vptree.BuildWorkers(workers), nil
	case IndexRProj:
		return rproj.BuildWorkers(workers), nil
	default:
		return nil, fmt.Errorf("dbsvec: unknown index kind %d", k)
	}
}

// ctxBuilder resolves the cancellable construction function: the tree
// backends build natively under the context (a Budget deadline interrupts
// the bulk load at subtree granularity); the rest adapt via entry/exit
// checks.
func (k IndexKind) ctxBuilder(eps float64, dim, workers int) (index.CtxBuilder, error) {
	switch k {
	case IndexKDTree:
		return kdtree.BuildWorkersCtx(workers), nil
	case IndexRTree:
		return rtree.BuildWorkersCtx(workers), nil
	case IndexVPTree:
		return vptree.BuildWorkersCtx(workers), nil
	case IndexRProj:
		return rproj.BuildWorkersCtx(workers), nil
	}
	b, err := k.builder(eps, dim, workers)
	if err != nil {
		return nil, err
	}
	return index.WithContext(b), nil
}

// Options configures Cluster. Zero values of optional fields select the
// paper's defaults.
type Options struct {
	// Eps is the ε-neighborhood radius (required, > 0 for meaningful
	// results).
	Eps float64
	// MinPts is the density threshold, counting the point itself
	// (required, >= 1).
	MinPts int

	// Nu overrides the SVDD penalty factor ν ∈ (0,1]; 0 selects the
	// adaptive ν* of Eq. 20. NuMin selects the paper's DBSVEC_min variant
	// (ν = 1/ñ, a single support vector per training in the limit).
	Nu    float64
	NuMin bool

	// MemoryFactor is the λ > 1 of the adaptive penalty weights; 0 selects
	// 1.5.
	MemoryFactor float64

	// LearnThreshold is the incremental-learning threshold T; 0 selects the
	// paper's 3, negative disables incremental learning.
	LearnThreshold int

	// DisableWeights turns off adaptive penalty weights (plain SVDD).
	DisableWeights bool

	// RandomKernel replaces the σ = r/√2 kernel width rule with a random
	// draw (ablation).
	RandomKernel bool

	// Seed drives all randomized choices; runs with equal seeds are
	// reproducible.
	Seed int64

	// Index selects the range-query backend (default IndexLinear).
	Index IndexKind

	// Workers sizes the query-execution worker pool: each expansion round's
	// support-vector queries and the noise-verification core tests run as
	// batches fanned across this many goroutines. 0 selects all CPUs, 1
	// runs sequentially. Labels, Clusters and the θ-term Stats are
	// identical for every worker count given a fixed seed.
	Workers int

	// MaxSVDDTarget caps the SVDD target-set size (default 1024).
	MaxSVDDTarget int

	// DisableWarmStart cold-starts every SVDD training round instead of
	// seeding the solver with the previous round's multipliers for the
	// surviving target points. Warm starting (the default) converges to the
	// same dual at the same tolerance but along a different iterate path,
	// so results can differ within solver tolerance from cold-start runs;
	// disable it for A/B benchmarking or exact cold-start equivalence. It
	// also neutralizes WarmFrom.
	DisableWarmStart bool

	// WarmFrom supplies a previously trained (or loaded) Model as the
	// warm-restart source: the first SVDD round of every sub-cluster seeds
	// the solver from the saved multipliers of overlapping points. On
	// unchanged or mostly-overlapping data this reproduces the cold
	// clustering within solver tolerance at strictly fewer SMO iterations
	// (Stats.WarmRestarts counts the seeded rounds). nil cold-starts.
	WarmFrom *Model

	// Budget bounds the run's work (wall clock, SVDD rounds, range
	// queries). When a limit fires, Cluster returns the best-effort partial
	// clustering built so far together with a *BudgetExceededError: check
	// for it with errors.As and decide whether the partial result is good
	// enough. The zero value disables every limit. In sharded mode the
	// budget applies per shard.
	Budget Budget

	// Shards is the eps-halo slab count for RunSharded/RunShardedFile
	// (default 1 = single-shot semantics). Ignored by Cluster.
	Shards int

	// ShardConcurrency caps the shards in flight during a sharded run,
	// bounding peak memory at O(ShardConcurrency × slab). 0 selects 1
	// (fully sequential, minimum footprint). Ignored by Cluster.
	ShardConcurrency int
}

// PhaseTimes is the per-phase wall-clock breakdown reported by the
// execution engine: Init covers initialization (DBSVEC's seed sweep,
// parallel DBSCAN's neighborhood materialization), Expand the expansion or
// merge phase, Verify the noise-verification or border-attachment phase.
type PhaseTimes = engine.PhaseTimes

// SVDDTimes is the per-stage wall-clock breakdown of SVDD training
// accumulated across a run's training rounds: kernel-matrix fill, SMO
// solve, and radius/score extraction.
type SVDDTimes = engine.SVDDTimes

// Stats reports the work a DBSVEC run performed, exposing every term of the
// paper's θ = s + 1 + k + m + MinPts·l cost model.
type Stats struct {
	// Seeds is the number of sub-cluster seeds (s).
	Seeds int
	// SupportVectors is the total number of support vectors (k).
	SupportVectors int64
	// Merges is the number of sub-cluster merges (m).
	Merges int
	// NoiseList is the number of potential noise points (l).
	NoiseList int
	// RangeQueries and RangeCounts count the ε-queries actually issued.
	RangeQueries int64
	RangeCounts  int64
	// SVDDTrainings is the number of SVDD models fitted.
	SVDDTrainings int
	// Degraded counts sub-clusters completed by the exact range-query
	// expansion fallback after their SVDD training failed recoverably
	// (non-convergence, degenerate kernel width, all-SV blowup).
	Degraded int
	// WarmRestarts counts the SVDD rounds seeded from Options.WarmFrom.
	WarmRestarts int
	// RetainedModels is the number of per-sub-cluster SVDD snapshots
	// retained on the run's Model artifact.
	RetainedModels int
	// IndexBuild is the wall-clock spent constructing the range-query index
	// before clustering; like Phases it varies run to run.
	IndexBuild time.Duration
	// Phases is the engine's wall-clock breakdown of the run; unlike the
	// counters above it varies run to run.
	Phases PhaseTimes
	// SVDD is the wall-clock breakdown of all SVDD trainings, a
	// sub-breakdown of Phases.Expand.
	SVDD SVDDTimes
	// Sharding reports the slab plan, per-shard execution and peak heap of a
	// RunSharded/RunShardedFile run; nil for single-shot Cluster runs. The
	// counters above are then the sums over all shards.
	Sharding *ShardStats
}

// Result is the outcome of a clustering run.
type Result struct {
	// Labels assigns each input point a cluster id in [0, Clusters) or
	// Noise (-1).
	Labels []int32
	// Clusters is the number of clusters found.
	Clusters int
	// Stats holds DBSVEC work counters; zero for other algorithms unless
	// documented.
	Stats Stats

	inner *cluster.Result
	model *Model
}

// NoiseCount returns the number of noise points.
func (r *Result) NoiseCount() int { return r.inner.NoiseCount() }

// ClusterSizes returns the size of each cluster indexed by cluster id.
func (r *Result) ClusterSizes() []int { return r.inner.Sizes() }

func wrapResult(res *cluster.Result) *Result {
	return &Result{Labels: res.Labels, Clusters: res.Clusters, inner: res}
}

// NewResult wraps externally produced labels — e.g. Model.Assign output —
// into a Result so WriteCSV, the metrics functions and the rendering helpers
// accept them. labels must hold cluster ids in [0, clusters) or Noise; the
// slice is used directly, not copied.
func NewResult(labels []int32, clusters int) *Result {
	return wrapResult(&cluster.Result{Labels: labels, Clusters: clusters})
}

// Cluster runs DBSVEC over the dataset.
func Cluster(d *Dataset, opts Options) (*Result, error) {
	return ClusterContext(context.Background(), d, opts)
}

// ClusterContext runs DBSVEC with cancellation: when ctx is cancelled the
// run stops between phases and returns ctx's error.
//
// When Options.Budget trips, the returned *Result is non-nil — the valid
// partial clustering — and the error is a *BudgetExceededError; every other
// error comes with a nil Result.
func ClusterContext(ctx context.Context, d *Dataset, opts Options) (*Result, error) {
	if d == nil {
		return nil, core.ErrNilDataset
	}
	build, err := opts.Index.ctxBuilder(opts.Eps, d.Dim(), opts.Workers)
	if err != nil {
		return nil, err
	}
	var warm []*svdd.Snapshot
	if opts.WarmFrom != nil {
		warm = opts.WarmFrom.snapshots()
	}
	res, retained, st, err := core.RunRetained(d.ds, core.Options{
		Context:          ctx,
		Eps:              opts.Eps,
		MinPts:           opts.MinPts,
		Nu:               opts.Nu,
		NuMin:            opts.NuMin,
		MemoryFactor:     opts.MemoryFactor,
		LearnThreshold:   opts.LearnThreshold,
		DisableWeights:   opts.DisableWeights,
		RandomKernel:     opts.RandomKernel,
		Seed:             opts.Seed,
		IndexBuilderCtx:  build,
		Workers:          opts.Workers,
		MaxSVDDTarget:    opts.MaxSVDDTarget,
		DisableWarmStart: opts.DisableWarmStart,
		WarmModels:       warm,
		Budget:           opts.Budget,
	})
	if err != nil && res == nil {
		return nil, err
	}
	out := wrapResult(res)
	out.model = newModel(d, opts, res, retained)
	out.Stats = Stats{
		Seeds:          st.Seeds,
		SupportVectors: st.SupportVectors,
		Merges:         st.Merges,
		NoiseList:      st.NoiseList,
		RangeQueries:   st.RangeQueries,
		RangeCounts:    st.RangeCounts,
		SVDDTrainings:  st.SVDDTrainings,
		Degraded:       st.Degraded,
		WarmRestarts:   st.WarmRestarts,
		RetainedModels: st.RetainedModels,
		IndexBuild:     st.IndexBuild,
		Phases:         st.Phases,
		SVDD:           st.SVDD,
	}
	return out, err
}
