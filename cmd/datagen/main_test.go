package main

import (
	"bytes"
	"testing"

	"dbsvec/internal/data"
	"dbsvec/internal/vec"
)

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind    string
		n, d, k int
		name    string
		wantN   int
		wantD   int
	}{
		{"spreader", 500, 4, 0, "", 500, 4},
		{"blobs", 300, 3, 4, "", 300, 3},
		{"embeddings", 250, 32, 4, "", 250, 32},
		{"t4.8k", 0, 0, 0, "", 8000, 2},
		{"t7.10k", 0, 0, 0, "", 10000, 2},
		{"d31", 0, 0, 0, "", 3100, 2},
		{"dim32", 0, 0, 0, "", 1024, 32},
		{"dim64", 0, 0, 0, "", 1024, 64},
		{"roadmap", 400, 0, 5, "", 400, 2},
		{"uniform", 200, 6, 0, "", 200, 6},
		{"ring", 150, 2, 0, "", 150, 2},
		{"suite", 0, 0, 0, "Seeds", 210, 7},
	}
	for _, c := range cases {
		ds, err := generate(c.kind, c.n, c.d, c.k, 0.35, c.name, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if ds.Len() != c.wantN || ds.Dim() != c.wantD {
			t.Errorf("%s: got %dx%d, want %dx%d", c.kind, ds.Len(), ds.Dim(), c.wantN, c.wantD)
		}
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", c.kind, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("bogus", 10, 2, 2, 0, "", 1); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := generate("suite", 0, 0, 0, 0, "nope", 1); err == nil {
		t.Error("unknown suite name should error")
	}
}

// TestStreamMatchesInMemory pins -stream's chunked binary output
// byte-identical to WriteBinary over the materialized dataset, for both
// streamable kinds and both precisions.
func TestStreamMatchesInMemory(t *testing.T) {
	for _, kind := range []string{"spreader", "uniform"} {
		for _, prec := range []vec.Precision{vec.F64, vec.F32} {
			ds, err := generate(kind, 700, 3, 0, 0, "", 9)
			if err != nil {
				t.Fatal(err)
			}
			if ds, err = ds.ToPrecision(prec); err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := data.WriteBinary(&want, ds); err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := streamOut(&got, kind, "bin", 700, 3, 9, prec); err != nil {
				t.Fatalf("%s/%v: %v", kind, prec, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("%s/%v: streamed bytes differ from in-memory writer (%d vs %d bytes)",
					kind, prec, got.Len(), want.Len())
			}
			// And the streamed file round-trips through the reader.
			back, err := data.ReadBinary(bytes.NewReader(got.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != 700 || back.Dim() != 3 || back.Precision() != prec {
				t.Fatalf("%s/%v: round trip got %dx%d %v", kind, prec, back.Len(), back.Dim(), back.Precision())
			}
		}
	}
}

// TestStreamErrors covers -stream's validation.
func TestStreamErrors(t *testing.T) {
	var sink bytes.Buffer
	if err := streamOut(&sink, "spreader", "csv", 10, 2, 1, vec.F64); err == nil {
		t.Error("-stream with -format csv should error")
	}
	if err := streamOut(&sink, "blobs", "bin", 10, 2, 1, vec.F64); err == nil {
		t.Error("-stream with a non-streamable kind should error")
	}
	if err := streamOut(&sink, "spreader", "bin", -1, 2, 1, vec.F64); err == nil {
		t.Error("negative n should error")
	}
}
