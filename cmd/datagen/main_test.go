package main

import "testing"

func TestGenerateKinds(t *testing.T) {
	cases := []struct {
		kind    string
		n, d, k int
		name    string
		wantN   int
		wantD   int
	}{
		{"spreader", 500, 4, 0, "", 500, 4},
		{"blobs", 300, 3, 4, "", 300, 3},
		{"embeddings", 250, 32, 4, "", 250, 32},
		{"t4.8k", 0, 0, 0, "", 8000, 2},
		{"t7.10k", 0, 0, 0, "", 10000, 2},
		{"d31", 0, 0, 0, "", 3100, 2},
		{"dim32", 0, 0, 0, "", 1024, 32},
		{"dim64", 0, 0, 0, "", 1024, 64},
		{"roadmap", 400, 0, 5, "", 400, 2},
		{"uniform", 200, 6, 0, "", 200, 6},
		{"ring", 150, 2, 0, "", 150, 2},
		{"suite", 0, 0, 0, "Seeds", 210, 7},
	}
	for _, c := range cases {
		ds, err := generate(c.kind, c.n, c.d, c.k, 0.35, c.name, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if ds.Len() != c.wantN || ds.Dim() != c.wantD {
			t.Errorf("%s: got %dx%d, want %dx%d", c.kind, ds.Len(), ds.Dim(), c.wantN, c.wantD)
		}
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", c.kind, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("bogus", 10, 2, 2, 0, "", 1); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := generate("suite", 0, 0, 0, 0, "nope", 1); err == nil {
		t.Error("unknown suite name should error")
	}
}
