// Command datagen emits the synthetic datasets used across this repository
// as CSV on stdout.
//
// Usage:
//
//	datagen -kind spreader -n 100000 -d 8 [-seed 1]
//	datagen -kind blobs -n 10000 -d 3 -k 5
//	datagen -kind t4.8k | t7.10k | d31 | dim32 | dim64 | roadmap | uniform | ring
//	datagen -kind suite -name t4.8k          # any Table III stand-in
//	datagen -kind uniform -n 1000000 -d 32 -precision f32 -format bin  # half-size cache
//	datagen -kind embeddings -n 100000 -d 256 -k 16 -noise 0.35 -precision f32
//	datagen -kind spreader -n 10000000 -d 8 -format bin -stream > big.bin
//
// -stream generates the binary format incrementally — one point in memory at
// a time instead of the whole dataset — and is byte-identical to the
// in-memory path. It supports the unbounded-size generators (spreader,
// uniform) and requires -format bin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dbsvec/internal/data"
	"dbsvec/internal/vec"
)

func main() {
	var (
		kind      = flag.String("kind", "spreader", "generator: spreader|blobs|embeddings|t4.8k|t7.10k|d31|dim32|dim64|roadmap|uniform|ring|suite")
		n         = flag.Int("n", 10000, "number of points")
		d         = flag.Int("d", 2, "dimensionality")
		k         = flag.Int("k", 5, "cluster count (blobs, embeddings) / hub count (roadmap)")
		noise     = flag.Float64("noise", 0.35, "perturbation scale for -kind embeddings (0: exact cluster directions, ~1: near-uniform)")
		name      = flag.String("name", "", "suite dataset name when -kind suite")
		seed      = flag.Int64("seed", 1, "random seed")
		format    = flag.String("format", "csv", "output format: csv | bin (binary, for large caches)")
		precision = flag.String("precision", "f64", "point-storage precision: f64 | f32 (f32 halves binary output and quantizes once)")
		stream    = flag.Bool("stream", false, "generate incrementally, one point resident at a time (bin format, spreader|uniform)")
	)
	flag.Parse()

	prec, err := vec.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if *stream {
		if err := streamOut(os.Stdout, *kind, *format, *n, *d, *seed, prec); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ds, err := generate(*kind, *n, *d, *k, *noise, *name, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if ds, err = ds.ToPrecision(prec); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "csv":
		err = data.WriteCSV(os.Stdout, ds, nil)
	case "bin":
		err = data.WriteBinary(os.Stdout, ds)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

// streamOut writes the dataset in the binary format incrementally: the
// generator emits one point at a time straight into a data.BinaryWriter, so
// memory stays O(d) regardless of -n. The bytes are identical to
// WriteBinary(generate(...)) because the streamed generators reuse the exact
// generation path and f32 quantization is the same single float32 rounding.
func streamOut(w io.Writer, kind, format string, n, d int, seed int64, prec vec.Precision) error {
	if format != "bin" {
		return fmt.Errorf("-stream requires -format bin (got %q)", format)
	}
	bw, err := data.NewBinaryWriter(w, n, d, prec)
	if err != nil {
		return err
	}
	emit := func(p []float64) error { return bw.WritePoints(p) }
	switch kind {
	case "spreader":
		err = data.SeedSpreader{N: n, D: d, Seed: seed}.Stream(emit)
	case "uniform":
		err = data.UniformStream(n, d, 1e5, seed, emit)
	default:
		return fmt.Errorf("-stream supports kinds spreader|uniform (got %q)", kind)
	}
	if err != nil {
		return err
	}
	return bw.Close()
}

func generate(kind string, n, d, k int, noise float64, name string, seed int64) (*vec.Dataset, error) {
	switch kind {
	case "spreader":
		return data.SeedSpreader{N: n, D: d, Seed: seed}.Generate(), nil
	case "blobs":
		return data.Blobs(n, d, k, 2, 100, 0.02, seed), nil
	case "embeddings":
		return data.Embeddings(n, d, k, noise, seed), nil
	case "t4.8k":
		return data.Chameleon48K(seed), nil
	case "t7.10k":
		return data.Chameleon710K(seed), nil
	case "d31":
		return data.D31(seed), nil
	case "dim32":
		return data.DimSet(1024, 32, seed), nil
	case "dim64":
		return data.DimSet(1024, 64, seed), nil
	case "roadmap":
		return data.RoadMap(n, k, seed), nil
	case "uniform":
		return data.Uniform(n, d, 1e5, seed), nil
	case "ring":
		return data.Ring(n, 100, 1, seed), nil
	case "suite":
		e, err := data.SuiteByName(name)
		if err != nil {
			return nil, err
		}
		return e.Gen(seed), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
