// Command datagen emits the synthetic datasets used across this repository
// as CSV on stdout.
//
// Usage:
//
//	datagen -kind spreader -n 100000 -d 8 [-seed 1]
//	datagen -kind blobs -n 10000 -d 3 -k 5
//	datagen -kind t4.8k | t7.10k | d31 | dim32 | dim64 | roadmap | uniform | ring
//	datagen -kind suite -name t4.8k          # any Table III stand-in
//	datagen -kind uniform -n 1000000 -d 32 -precision f32 -format bin  # half-size cache
//	datagen -kind embeddings -n 100000 -d 256 -k 16 -noise 0.35 -precision f32
package main

import (
	"flag"
	"fmt"
	"os"

	"dbsvec/internal/data"
	"dbsvec/internal/vec"
)

func main() {
	var (
		kind      = flag.String("kind", "spreader", "generator: spreader|blobs|embeddings|t4.8k|t7.10k|d31|dim32|dim64|roadmap|uniform|ring|suite")
		n         = flag.Int("n", 10000, "number of points")
		d         = flag.Int("d", 2, "dimensionality")
		k         = flag.Int("k", 5, "cluster count (blobs, embeddings) / hub count (roadmap)")
		noise     = flag.Float64("noise", 0.35, "perturbation scale for -kind embeddings (0: exact cluster directions, ~1: near-uniform)")
		name      = flag.String("name", "", "suite dataset name when -kind suite")
		seed      = flag.Int64("seed", 1, "random seed")
		format    = flag.String("format", "csv", "output format: csv | bin (binary, for large caches)")
		precision = flag.String("precision", "f64", "point-storage precision: f64 | f32 (f32 halves binary output and quantizes once)")
	)
	flag.Parse()

	prec, err := vec.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	ds, err := generate(*kind, *n, *d, *k, *noise, *name, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if ds, err = ds.ToPrecision(prec); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "csv":
		err = data.WriteCSV(os.Stdout, ds, nil)
	case "bin":
		err = data.WriteBinary(os.Stdout, ds)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
}

func generate(kind string, n, d, k int, noise float64, name string, seed int64) (*vec.Dataset, error) {
	switch kind {
	case "spreader":
		return data.SeedSpreader{N: n, D: d, Seed: seed}.Generate(), nil
	case "blobs":
		return data.Blobs(n, d, k, 2, 100, 0.02, seed), nil
	case "embeddings":
		return data.Embeddings(n, d, k, noise, seed), nil
	case "t4.8k":
		return data.Chameleon48K(seed), nil
	case "t7.10k":
		return data.Chameleon710K(seed), nil
	case "d31":
		return data.D31(seed), nil
	case "dim32":
		return data.DimSet(1024, 32, seed), nil
	case "dim64":
		return data.DimSet(1024, 64, seed), nil
	case "roadmap":
		return data.RoadMap(n, k, seed), nil
	case "uniform":
		return data.Uniform(n, d, 1e5, seed), nil
	case "ring":
		return data.Ring(n, 100, 1, seed), nil
	case "suite":
		e, err := data.SuiteByName(name)
		if err != nil {
			return nil, err
		}
		return e.Gen(seed), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
