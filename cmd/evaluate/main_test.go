package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLabeled(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEvaluateIdentical(t *testing.T) {
	csv := "0,0,0\n0.1,0,0\n5,5,1\n5.1,5,1\n99,99,-1\n"
	ref := writeLabeled(t, "ref.csv", csv)
	cand := writeLabeled(t, "cand.csv", csv)
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(out, ref, cand, 100, 1); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Name())
	s := string(data)
	for _, want := range []string{"pair recall:       1.0000", "adjusted rand:     1.0000", "noise agreement:   1.0000"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestEvaluateSplit(t *testing.T) {
	ref := writeLabeled(t, "ref.csv", "0,0,0\n1,0,0\n2,0,0\n3,0,0\n")
	cand := writeLabeled(t, "cand.csv", "0,0,0\n1,0,0\n2,0,1\n3,0,1\n")
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(out, ref, cand, 0, 1); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out.Name())
	if !strings.Contains(string(data), "pair recall:       0.3333") {
		t.Errorf("expected recall 1/3:\n%s", string(data))
	}
}

func TestEvaluateErrors(t *testing.T) {
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	good := writeLabeled(t, "g.csv", "0,0,0\n")
	if err := run(out, "/nonexistent.csv", good, 0, 1); err == nil {
		t.Error("missing ref should error")
	}
	short := writeLabeled(t, "s.csv", "0,0,0\n1,1,0\n")
	if err := run(out, good, short, 0, 1); err == nil {
		t.Error("cardinality mismatch should error")
	}
	oneCol := writeLabeled(t, "one.csv", "0\n")
	if err := run(out, oneCol, oneCol, 0, 1); err == nil {
		t.Error("label-only file should error")
	}
}
