// Command evaluate compares two clustering outputs (CSV files whose last
// column is a cluster label, as written by cmd/dbsvec) and prints the
// paper's quality metrics: pair recall of the candidate against the
// reference, the Adjusted Rand Index, noise agreement, and — when the
// coordinate columns are present — silhouette compactness and
// Davies–Bouldin separation for each labeling.
//
// Usage:
//
//	evaluate -ref exact.csv -cand approx.csv [-sample 3000]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"dbsvec/internal/cluster"
	"dbsvec/internal/data"
	"dbsvec/internal/eval"
	"dbsvec/internal/vec"
)

func main() {
	var (
		refPath  = flag.String("ref", "", "reference labeled CSV (required)")
		candPath = flag.String("cand", "", "candidate labeled CSV (required)")
		sample   = flag.Int("sample", 3000, "metric sample cap for O(n^2) internal metrics (0 disables them)")
		seed     = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()
	if *refPath == "" || *candPath == "" {
		fmt.Fprintln(os.Stderr, "evaluate: -ref and -cand are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *refPath, *candPath, *sample, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
		os.Exit(1)
	}
}

func run(out *os.File, refPath, candPath string, sample int, seed int64) error {
	refDS, refRes, err := loadLabeled(refPath)
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	candDS, candRes, err := loadLabeled(candPath)
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	if refDS.Len() != candDS.Len() {
		return fmt.Errorf("cardinality mismatch: %d vs %d points", refDS.Len(), candDS.Len())
	}

	recall, err := eval.PairRecall(refRes, candRes)
	if err != nil {
		return err
	}
	ari, err := eval.AdjustedRandIndex(refRes, candRes)
	if err != nil {
		return err
	}
	agree, err := eval.NoiseAgreement(refRes, candRes)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "points:            %d\n", refDS.Len())
	fmt.Fprintf(out, "reference:         %d clusters, %d noise\n", refRes.Clusters, refRes.NoiseCount())
	fmt.Fprintf(out, "candidate:         %d clusters, %d noise\n", candRes.Clusters, candRes.NoiseCount())
	fmt.Fprintf(out, "pair recall:       %.4f\n", recall)
	fmt.Fprintf(out, "adjusted rand:     %.4f\n", ari)
	fmt.Fprintf(out, "noise agreement:   %.4f\n", agree)

	if sample > 0 && refDS.Dim() > 0 {
		ids := sampleIDs(refDS.Len(), sample, seed)
		sub := refDS.Subset(ids)
		for _, side := range []struct {
			name string
			res  *cluster.Result
		}{{"reference", refRes}, {"candidate", candRes}} {
			sres := subLabels(side.res, ids)
			c, err := eval.Silhouette(sub, sres)
			if err != nil {
				return err
			}
			s, err := eval.DaviesBouldin(sub, sres)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%s compactness=%.4f separation=%.4f\n", side.name, c, s)
		}
	}
	return nil
}

// loadLabeled reads a CSV whose final column is the cluster label and
// splits it into coordinates and a Result.
func loadLabeled(path string) (*vec.Dataset, *cluster.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	raw, err := data.ReadCSV(f)
	if err != nil {
		return nil, nil, err
	}
	if raw.Dim() < 2 {
		return nil, nil, fmt.Errorf("%s: need at least one coordinate column plus the label column", path)
	}
	d := raw.Dim() - 1
	coords := make([]float64, 0, raw.Len()*d)
	labels := make([]int32, raw.Len())
	for i := 0; i < raw.Len(); i++ {
		row := raw.Point(i)
		coords = append(coords, row[:d]...)
		labels[i] = int32(row[d])
	}
	ds, err := vec.NewDataset(coords, d)
	if err != nil {
		return nil, nil, err
	}
	res := (&cluster.Result{Labels: labels}).Compact()
	return ds, res, nil
}

func sampleIDs(n, cap int, seed int64) []int32 {
	if n <= cap {
		return vec.Iota(n)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:cap]
	ids := make([]int32, cap)
	for i, p := range perm {
		ids[i] = int32(p)
	}
	return ids
}

func subLabels(res *cluster.Result, ids []int32) *cluster.Result {
	labels := make([]int32, len(ids))
	for i, id := range ids {
		labels[i] = res.Labels[id]
	}
	return (&cluster.Result{Labels: labels}).Compact()
}
