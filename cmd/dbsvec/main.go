// Command dbsvec clusters a CSV file of numeric rows and writes the input
// back with a cluster-label column appended (-1 = noise).
//
// Usage:
//
//	dbsvec -eps 5000 -minpts 100 [-algo dbsvec] [-in points.csv] [-out labeled.csv]
//	       [-nu 0] [-normalize 0] [-index linear] [-precision f64] [-seed 1]
//	       [-workers 0] [-stats] [-timeout 0] [-maxrounds 0] [-maxqueries 0]
//	       [-savemodel model.bin] [-loadmodel model.bin] [-assign]
//	       [-shards 0] [-shardpar 1] [-shardmem]
//
// Algorithms: dbsvec (default), dbscan, pdbscan, rho, lsh, nq, kmeans
// (with -k).
// Reading from stdin and writing to stdout are the defaults.
//
// Sharded execution (-algo dbsvec only): -shards k clusters the input in k
// eps-halo spatial slabs with an exact boundary merge; -shardpar caps the
// slabs in flight. Adding -shardmem streams the slabs out-of-core: -in must
// then name a binary dataset file (datagen -format bin), which is clustered
// slab by slab without ever holding the whole dataset in memory, and the
// labeled CSV is streamed back from the same file. In -shardmem mode the
// file header selects the precision, so -precision must stay f64 (the
// default).
//
// The -timeout / -maxrounds / -maxqueries flags bound the DBSVEC run's work
// (wall clock, SVDD trainings, range queries). When a limit fires, the
// best-effort partial clustering is still written to -out; the exceeded
// budget is reported on stderr and the exit code stays 0.
//
// Model artifacts (-algo dbsvec only): -savemodel writes the run's retained
// per-sub-cluster SVDD snapshots to a binary model file. -loadmodel reads
// one back; combined with -assign the input points are classified against
// the loaded model's boundaries (no clustering run), otherwise the loaded
// model warm-restarts the SVDD training rounds of a fresh run.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"dbsvec"
	"dbsvec/internal/data"
)

type budgetFlags struct {
	timeout    time.Duration
	maxRounds  int
	maxQueries int64
}

// modelFlags groups the model-artifact options: save the trained model,
// load a prior one (as warm-restart source), or assign against it.
type modelFlags struct {
	save   string
	load   string
	assign bool
}

// shardFlags groups the sharded-execution options: slab count, shard-level
// concurrency cap, and the out-of-core binary-input mode.
type shardFlags struct {
	shards int
	par    int
	mem    bool
}

func main() {
	var (
		algo      = flag.String("algo", "dbsvec", "algorithm: dbsvec|dbscan|pdbscan|rho|lsh|nq|kmeans")
		eps       = flag.Float64("eps", 0, "epsilon radius (required for density-based algorithms)")
		minPts    = flag.Int("minpts", 0, "density threshold MinPts")
		k         = flag.Int("k", 0, "cluster count for kmeans")
		nu        = flag.Float64("nu", 0, "DBSVEC penalty factor nu (0 = adaptive nu*)")
		inPath    = flag.String("in", "", "input CSV (default stdin)")
		outPath   = flag.String("out", "", "output CSV with labels (default stdout)")
		normalize = flag.Float64("normalize", 0, "rescale every dimension to [0,S] before clustering (0 = off)")
		indexKind = flag.String("index", "linear", "range-query index: linear|kdtree|rtree|grid|parallel|pyramid|vptree|rproj")
		precision = flag.String("precision", "f64", "point-storage precision: f64 (exact) or f32 (half the scan bandwidth, one quantization at load)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "query-engine worker goroutines (0 = all CPUs)")
		stats     = flag.Bool("stats", false, "print run statistics to stderr")
		timeout   = flag.Duration("timeout", 0, "dbsvec: wall-clock budget; on expiry the partial clustering is written (0 = unlimited)")
		maxRound  = flag.Int("maxrounds", 0, "dbsvec: SVDD training budget (0 = unlimited)")
		maxQuery  = flag.Int64("maxqueries", 0, "dbsvec: range-query budget (0 = unlimited)")
		saveModel = flag.String("savemodel", "", "dbsvec: write the trained model artifact to this file")
		loadModel = flag.String("loadmodel", "", "dbsvec: read a model artifact; warm-restarts the run, or scores with -assign")
		assign    = flag.Bool("assign", false, "classify the input points against -loadmodel instead of clustering")
		shards    = flag.Int("shards", 0, "dbsvec: cluster in this many eps-halo spatial slabs with exact merge (0 = single-shot)")
		shardPar  = flag.Int("shardpar", 0, "dbsvec: shards in flight at once; peak memory is O(shardpar × slab) (0 = 1, fully sequential)")
		shardMem  = flag.Bool("shardmem", false, "dbsvec: stream -in (a binary dataset file) out-of-core, one slab at a time; requires -shards")
	)
	flag.Parse()

	b := budgetFlags{timeout: *timeout, maxRounds: *maxRound, maxQueries: *maxQuery}
	m := modelFlags{save: *saveModel, load: *loadModel, assign: *assign}
	s := shardFlags{shards: *shards, par: *shardPar, mem: *shardMem}
	if err := run(*algo, *eps, *minPts, *k, *nu, *inPath, *outPath, *normalize, *indexKind, *precision, *seed, *workers, *stats, b, m, s); err != nil {
		fmt.Fprintf(os.Stderr, "dbsvec: %v\n", err)
		os.Exit(1)
	}
}

func run(algo string, eps float64, minPts, k int, nu float64, inPath, outPath string, normalize float64, indexKind, precision string, seed int64, workers int, stats bool, budget budgetFlags, model modelFlags, sharding shardFlags) error {
	if model.assign && model.load == "" {
		return fmt.Errorf("-assign requires -loadmodel")
	}
	prec, err := dbsvec.ParsePrecision(precision)
	if err != nil {
		return err
	}
	if (model.save != "" || model.load != "") && algo != "dbsvec" {
		return fmt.Errorf("model artifacts are dbsvec-only (algo %q)", algo)
	}
	if sharding.shards > 0 || sharding.mem {
		if algo != "dbsvec" {
			return fmt.Errorf("sharded execution is dbsvec-only (algo %q)", algo)
		}
		if model.load != "" {
			return fmt.Errorf("-loadmodel is not supported in sharded mode")
		}
	}
	if sharding.mem {
		if sharding.shards == 0 {
			return fmt.Errorf("-shardmem requires -shards")
		}
		if inPath == "" {
			return fmt.Errorf("-shardmem streams from a binary file: -in is required")
		}
		if normalize > 0 {
			return fmt.Errorf("-normalize is not supported with -shardmem (normalization needs the whole dataset in memory)")
		}
		if prec != dbsvec.PrecisionF64 {
			return fmt.Errorf("-shardmem takes the precision from the binary file header; leave -precision at f64")
		}
		return runShardedBinary(eps, minPts, nu, inPath, outPath, indexKind, seed, workers, stats, budget, model, sharding)
	}
	var in io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	ds, err := dbsvec.ReadCSV(in)
	if err != nil {
		return err
	}
	if ds, err = ds.ToPrecision(prec); err != nil {
		return err
	}
	if normalize > 0 {
		ds.Normalize(normalize)
	}

	var loaded *dbsvec.Model
	if model.load != "" {
		f, err := os.Open(model.load)
		if err != nil {
			return err
		}
		loaded, err = dbsvec.LoadModel(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if model.assign {
		return runAssign(ds, loaded, outPath, workers, stats)
	}

	idx, err := parseIndex(indexKind)
	if err != nil {
		return err
	}

	start := time.Now()
	var res *dbsvec.Result
	var budgetErr *dbsvec.BudgetExceededError
	switch algo {
	case "dbsvec":
		opts := dbsvec.Options{
			Eps: eps, MinPts: minPts, Nu: nu, Index: idx, Seed: seed, Workers: workers,
			WarmFrom:         loaded,
			Shards:           sharding.shards,
			ShardConcurrency: sharding.par,
			Budget: dbsvec.Budget{
				MaxDuration:     budget.timeout,
				MaxSVDDRounds:   budget.maxRounds,
				MaxRangeQueries: budget.maxQueries,
			},
		}
		if sharding.shards > 0 {
			res, err = dbsvec.RunSharded(ds, opts)
		} else {
			res, err = dbsvec.Cluster(ds, opts)
		}
		// A tripped budget still yields a valid partial clustering: warn and
		// keep going so the labels reach -out.
		if errors.As(err, &budgetErr) && res != nil {
			fmt.Fprintf(os.Stderr, "dbsvec: %v (writing partial clustering)\n", budgetErr)
			err = nil
		}
	case "dbscan":
		res, err = dbsvec.DBSCAN(ds, eps, minPts, idx)
	case "pdbscan":
		res, err = dbsvec.DBSCANParallel(ds, eps, minPts, idx, workers)
	case "rho":
		res, err = dbsvec.RhoApproximate(ds, dbsvec.RhoOptions{Eps: eps, MinPts: minPts})
	case "lsh":
		res, err = dbsvec.DBSCANLSH(ds, dbsvec.LSHOptions{Eps: eps, MinPts: minPts, Seed: seed})
	case "nq":
		res, err = dbsvec.NQDBSCAN(ds, eps, minPts)
	case "kmeans":
		var km *dbsvec.KMeansResult
		km, err = dbsvec.KMeans(ds, k, seed)
		if km != nil {
			res = km.Result
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if model.save != "" {
		m := res.Model()
		if m == nil {
			return fmt.Errorf("algorithm %q retained no model to save", algo)
		}
		f, err := os.Create(model.save)
		if err != nil {
			return err
		}
		if err := m.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := ds.WriteCSV(out, res); err != nil {
		return err
	}
	if stats {
		printStats(algo, ds.Len(), ds.Dim(), res, elapsed, budgetErr)
	}
	return nil
}

// parseIndex maps the CLI spelling of an index kind to its IndexKind.
func parseIndex(indexKind string) (dbsvec.IndexKind, error) {
	switch indexKind {
	case "linear":
		return dbsvec.IndexLinear, nil
	case "kdtree":
		return dbsvec.IndexKDTree, nil
	case "rtree":
		return dbsvec.IndexRTree, nil
	case "grid":
		return dbsvec.IndexGrid, nil
	case "parallel":
		return dbsvec.IndexParallel, nil
	case "pyramid":
		return dbsvec.IndexPyramid, nil
	case "vptree":
		return dbsvec.IndexVPTree, nil
	case "rproj":
		return dbsvec.IndexRProj, nil
	default:
		return 0, fmt.Errorf("unknown index %q", indexKind)
	}
}

// printStats writes the -stats report to stderr.
func printStats(algo string, n, d int, res *dbsvec.Result, elapsed time.Duration, budgetErr *dbsvec.BudgetExceededError) {
	fmt.Fprintf(os.Stderr, "algorithm=%s n=%d d=%d clusters=%d noise=%d time=%s\n",
		algo, n, d, res.Clusters, res.NoiseCount(), elapsed.Round(time.Millisecond))
	if algo == "dbsvec" {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "seeds=%d supportVectors=%d merges=%d noiseList=%d rangeQueries=%d rangeCounts=%d svddTrainings=%d degraded=%d retainedModels=%d warmRestarts=%d\n",
			s.Seeds, s.SupportVectors, s.Merges, s.NoiseList, s.RangeQueries, s.RangeCounts, s.SVDDTrainings, s.Degraded, s.RetainedModels, s.WarmRestarts)
		if budgetErr != nil {
			fmt.Fprintf(os.Stderr, "budgetExceeded=%s budgetElapsed=%s budgetRounds=%d budgetQueries=%d\n",
				budgetErr.Limit, budgetErr.Elapsed.Round(time.Millisecond), budgetErr.SVDDRounds, budgetErr.RangeQueries)
		}
	}
	if b := res.Stats.IndexBuild; b > 0 {
		fmt.Fprintf(os.Stderr, "indexBuild=%s\n", b.Round(time.Microsecond))
	}
	if p := res.Stats.Phases; p.Total() > 0 {
		fmt.Fprintf(os.Stderr, "phaseInit=%s phaseExpand=%s phaseVerify=%s\n",
			p.Init.Round(time.Microsecond), p.Expand.Round(time.Microsecond), p.Verify.Round(time.Microsecond))
	}
	if s := res.Stats.SVDD; s.Total() > 0 {
		fmt.Fprintf(os.Stderr, "svddFill=%s svddSolve=%s svddFinish=%s\n",
			s.Fill.Round(time.Microsecond), s.Solve.Round(time.Microsecond), s.Finish.Round(time.Microsecond))
	}
	if sh := res.Stats.Sharding; sh != nil {
		fmt.Fprintf(os.Stderr, "shards=%d axis=%d boundaryPoints=%d crossMerges=%d plan=%s shardMerge=%s peakHeapBytes=%d\n",
			len(sh.Shards), sh.Axis, sh.BoundaryPoints, sh.CrossMerges,
			sh.Plan.Round(time.Microsecond), sh.Merge.Round(time.Microsecond), sh.PeakHeapBytes)
	}
}

// runShardedBinary is the -shardmem path: the binary dataset at inPath is
// clustered out-of-core through RunShardedFile (one slab resident at a time),
// then the labeled CSV is streamed back from the same file block by block, so
// the full dataset is never held in memory.
func runShardedBinary(eps float64, minPts int, nu float64, inPath, outPath, indexKind string, seed int64, workers int, stats bool, budget budgetFlags, model modelFlags, sharding shardFlags) error {
	idx, err := parseIndex(indexKind)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := dbsvec.RunShardedFile(inPath, dbsvec.Options{
		Eps: eps, MinPts: minPts, Nu: nu, Index: idx, Seed: seed, Workers: workers,
		Shards:           sharding.shards,
		ShardConcurrency: sharding.par,
		Budget: dbsvec.Budget{
			MaxDuration:     budget.timeout,
			MaxSVDDRounds:   budget.maxRounds,
			MaxRangeQueries: budget.maxQueries,
		},
	})
	var budgetErr *dbsvec.BudgetExceededError
	if errors.As(err, &budgetErr) && res != nil {
		fmt.Fprintf(os.Stderr, "dbsvec: %v (writing partial clustering)\n", budgetErr)
		err = nil
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if model.save != "" {
		m := res.Model()
		if m == nil {
			return fmt.Errorf("sharded run retained no model to save")
		}
		f, err := os.Create(model.save)
		if err != nil {
			return err
		}
		if err := m.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	d, err := writeLabeledBinaryCSV(inPath, out, res)
	if err != nil {
		return err
	}
	if stats {
		printStats("dbsvec", len(res.Labels), d, res, elapsed, budgetErr)
	}
	return nil
}

// labelBlockPoints is the block size of the streamed label-CSV writer.
const labelBlockPoints = 8192

// writeLabeledBinaryCSV streams the binary dataset at path to w as labeled
// CSV — the same rows Dataset.WriteCSV would produce — reading one block of
// points at a time. Returns the dataset's dimensionality.
func writeLabeledBinaryCSV(path string, w io.Writer, res *dbsvec.Result) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h, err := data.ReadBinaryHeader(f)
	if err != nil {
		return 0, err
	}
	if h.N != len(res.Labels) {
		return 0, fmt.Errorf("binary file holds %d points but the run labeled %d", h.N, len(res.Labels))
	}
	bw := bufio.NewWriter(w)
	buf := make([]float64, min(labelBlockPoints, h.N)*h.D)
	for start := 0; start < h.N; start += labelBlockPoints {
		count := min(labelBlockPoints, h.N-start)
		chunk := buf[:count*h.D]
		if err := data.ReadBinaryBlock(f, h, start, count, chunk); err != nil {
			return 0, err
		}
		for i := 0; i < count; i++ {
			row := chunk[i*h.D : (i+1)*h.D]
			for j, v := range row {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
			fmt.Fprintf(bw, ",%d\n", res.Labels[start+i])
		}
	}
	return h.D, bw.Flush()
}

// runAssign scores the input points against a loaded model instead of
// clustering: each point gets the cluster of the SVDD boundary containing
// it (nearest-cluster fallback within ε, Noise otherwise) and the labeled
// CSV is written exactly like a clustering run's.
func runAssign(ds *dbsvec.Dataset, m *dbsvec.Model, outPath string, workers int, stats bool) error {
	// Validate the input against the model before any assignment work: a
	// dimensionality or precision mismatch should be one clear up-front
	// error, not a late failure (or silent garbage) mid-batch.
	if ds.Dim() != m.Dim() {
		return fmt.Errorf("%w: -assign input is %d-dimensional but the model was trained on %d dimensions", dbsvec.ErrInvalidParams, ds.Dim(), m.Dim())
	}
	if ds.Precision() != m.Precision() {
		return fmt.Errorf("%w: -assign input precision %s differs from the model's training precision %s (pass -precision %s)",
			dbsvec.ErrInvalidParams, ds.Precision(), m.Precision(), m.Precision())
	}
	if err := m.CheckAssignable(ds); err != nil {
		return err
	}
	start := time.Now()
	labels, err := m.Assign(ds, workers)
	if err != nil {
		return err
	}
	res := dbsvec.NewResult(labels, m.Clusters())
	elapsed := time.Since(start)

	var out io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := ds.WriteCSV(out, res); err != nil {
		return err
	}
	if stats {
		fmt.Fprintf(os.Stderr, "assign n=%d d=%d modelClusters=%d modelSnapshots=%d modelSVs=%d noise=%d time=%s\n",
			ds.Len(), ds.Dim(), m.Clusters(), m.Snapshots(), m.SupportVectors(), res.NoiseCount(), elapsed.Round(time.Millisecond))
	}
	return nil
}
