package main

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"dbsvec"
)

func writeInput(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "in.csv")
	var sb strings.Builder
	// Two tight clumps of 10 points each plus one outlier.
	for i := 0; i < 10; i++ {
		sb.WriteString("0.1,0.1\n")
		sb.WriteString("50.0,50.0\n")
	}
	sb.WriteString("500,500\n")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	in := writeInput(t)
	for _, algo := range []string{"dbsvec", "dbscan", "pdbscan", "rho", "lsh", "nq"} {
		out := filepath.Join(t.TempDir(), "out.csv")
		if err := run(algo, 5, 5, 0, 0, in, out, 0, "linear", "f64", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 21 {
			t.Fatalf("%s: wrote %d lines, want 21", algo, len(lines))
		}
		// Outlier must be noise for the density algorithms.
		if !strings.HasSuffix(lines[20], ",-1") {
			t.Errorf("%s: outlier line %q not labeled noise", algo, lines[20])
		}
	}
}

// TestRunPrecisionF32 drives the -precision flag end to end: an f32-mode
// run must label this unambiguous input identically to the f64 run, and an
// unknown precision must error.
func TestRunPrecisionF32(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	out64 := filepath.Join(dir, "out64.csv")
	out32 := filepath.Join(dir, "out32.csv")
	if err := run("dbsvec", 5, 5, 0, 0, in, out64, 0, "linear", "f64", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err != nil {
		t.Fatal(err)
	}
	if err := run("dbsvec", 5, 5, 0, 0, in, out32, 0, "linear", "f32", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err != nil {
		t.Fatal(err)
	}
	// The f32 run echoes quantized coordinates into the CSV, so only the
	// label column is expected to match.
	a, err := os.ReadFile(out64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out32)
	if err != nil {
		t.Fatal(err)
	}
	aLines := strings.Split(strings.TrimSpace(string(a)), "\n")
	bLines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(aLines) != len(bLines) {
		t.Fatalf("line counts differ: %d vs %d", len(aLines), len(bLines))
	}
	for i := range aLines {
		al := aLines[i][strings.LastIndexByte(aLines[i], ',')+1:]
		bl := bLines[i][strings.LastIndexByte(bLines[i], ',')+1:]
		if al != bl {
			t.Errorf("line %d: f32 label %q != f64 label %q", i, bl, al)
		}
	}
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 0, "linear", "f16", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err == nil {
		t.Error("unknown precision should error")
	}
}

func TestRunKMeans(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := run("kmeans", 0, 0, 2, 0, in, out, 0, "linear", "f64", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndexKinds(t *testing.T) {
	in := writeInput(t)
	for _, idx := range []string{"linear", "kdtree", "rtree", "grid", "parallel", "pyramid", "vptree", "rproj"} {
		out := filepath.Join(t.TempDir(), "out.csv")
		if err := run("dbscan", 5, 5, 0, 0, in, out, 0, idx, "f64", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err != nil {
			t.Fatalf("index %s: %v", idx, err)
		}
	}
}

func TestRunNormalize(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	// After normalization to [0,1000], eps must be rescaled accordingly;
	// eps=20 separates clumps at 0 and ~100 (of 1000).
	if err := run("dbsvec", 20, 5, 0, 0, in, out, 1000, "linear", "f64", 1, 0, true, budgetFlags{}, modelFlags{}, shardFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBudgetPartialOutput(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	// A tiny range-query budget trips mid-run; the CLI must still succeed
	// and write a full-length labeled file (best-effort partial clustering).
	if err := run("dbsvec", 5, 5, 0, 0, in, out, 0, "linear", "f64", 1, 0, true, budgetFlags{maxQueries: 1}, modelFlags{}, shardFlags{}); err != nil {
		t.Fatalf("budget trip must not fail the command: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 21 {
		t.Fatalf("wrote %d lines, want 21", len(lines))
	}
}

func TestRunErrors(t *testing.T) {
	in := writeInput(t)
	if err := run("bogus", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err == nil {
		t.Error("unknown algorithm should error")
	}
	if err := run("dbscan", 5, 5, 0, 0, in, "", 0, "bogus", "f64", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err == nil {
		t.Error("unknown index should error")
	}
	if err := run("dbscan", 5, 5, 0, 0, "/nonexistent/file.csv", "", 0, "linear", "f64", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err == nil {
		t.Error("missing input file should error")
	}
	if err := run("dbscan", -5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false, budgetFlags{}, modelFlags{}, shardFlags{}); err == nil {
		t.Error("invalid eps should error")
	}
}

// writeJitterInput writes two well-separated jittered clumps plus an
// outlier — unlike writeInput's coincident points, these give SVDD a
// non-degenerate kernel width, so the run retains usable snapshots.
func writeJitterInput(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	var sb strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "%.3f,%.3f\n", 0.1*float64(i), 0.13*float64(i%5))
		fmt.Fprintf(&sb, "%.3f,%.3f\n", 50+0.1*float64(i), 50+0.13*float64(i%5))
	}
	sb.WriteString("500,500\n")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSaveLoadAssign drives the model-artifact lifecycle through the CLI:
// cluster + -savemodel, then -loadmodel -assign on the same input must
// reproduce the clustering's labels, and -loadmodel without -assign must
// warm-restart a fresh run to the same labeling.
func TestRunSaveLoadAssign(t *testing.T) {
	in := writeJitterInput(t)
	dir := t.TempDir()
	clusterOut := filepath.Join(dir, "cluster.csv")
	modelPath := filepath.Join(dir, "model.bin")
	if err := run("dbsvec", 5, 5, 0, 0, in, clusterOut, 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{save: modelPath}, shardFlags{}); err != nil {
		t.Fatalf("cluster+save: %v", err)
	}
	if fi, err := os.Stat(modelPath); err != nil || fi.Size() == 0 {
		t.Fatalf("model file not written: %v", err)
	}

	assignOut := filepath.Join(dir, "assign.csv")
	if err := run("dbsvec", 0, 0, 0, 0, in, assignOut, 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{load: modelPath, assign: true}, shardFlags{}); err != nil {
		t.Fatalf("load+assign: %v", err)
	}
	want, err := os.ReadFile(clusterOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(assignOut)
	if err != nil {
		t.Fatal(err)
	}
	wantLines := strings.Split(strings.TrimSpace(string(want)), "\n")
	gotLines := strings.Split(strings.TrimSpace(string(got)), "\n")
	if len(wantLines) != len(gotLines) {
		t.Fatalf("assign wrote %d lines, clustering %d", len(gotLines), len(wantLines))
	}
	for i := range wantLines {
		// The tight clumps and the far outlier are unambiguous, so assign
		// must reproduce the clustering's labels exactly here.
		if wantLines[i] != gotLines[i] {
			t.Errorf("line %d: assign %q != cluster %q", i, gotLines[i], wantLines[i])
		}
	}

	warmOut := filepath.Join(dir, "warm.csv")
	if err := run("dbsvec", 5, 5, 0, 0, in, warmOut, 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{load: modelPath}, shardFlags{}); err != nil {
		t.Fatalf("warm restart: %v", err)
	}
	warm, err := os.ReadFile(warmOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(warm) != string(want) {
		t.Error("warm-restarted run labeled the input differently from the cold run")
	}
}

// TestRunModelFlagErrors covers the flag-validation and decode failures.
func TestRunModelFlagErrors(t *testing.T) {
	in := writeInput(t)
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{assign: true}, shardFlags{}); err == nil {
		t.Error("-assign without -loadmodel should error")
	}
	if err := run("dbscan", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{save: filepath.Join(t.TempDir(), "m.bin")}, shardFlags{}); err == nil {
		t.Error("-savemodel with a non-dbsvec algorithm should error")
	}
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{load: "/nonexistent/model.bin", assign: true}, shardFlags{}); err == nil {
		t.Error("missing model file should error")
	}
	bogus := filepath.Join(t.TempDir(), "bogus.bin")
	if err := os.WriteFile(bogus, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{load: bogus, assign: true}, shardFlags{}); err == nil {
		t.Error("corrupt model file should error")
	}
}

// writeShardInput writes line clusters spanning the full extent of axis 0 —
// the DBSCAN-exact regime the sharded merge is proven for, shaped so every
// slab cut slices every cluster (see internal/shard tests) — and returns the
// CSV path plus the rows themselves.
func writeShardInput(t *testing.T, nStrips, perStrip int, seed int64) (string, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, 0, nStrips*perStrip)
	var sb strings.Builder
	for s := 0; s < nStrips; s++ {
		for i := 0; i < perStrip; i++ {
			x := (float64(i)+0.5)*0.2 + (rng.Float64()-0.5)*0.1
			y := float64(s)*8 + rng.Float64()*0.5
			rows = append(rows, []float64{x, y})
			fmt.Fprintf(&sb, "%s,%s\n",
				strconv.FormatFloat(x, 'g', -1, 64), strconv.FormatFloat(y, 'g', -1, 64))
		}
	}
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, rows
}

// TestRunSharded: -shards k must reproduce the single-shot CLI output byte
// for byte on unambiguous input.
func TestRunSharded(t *testing.T) {
	in, _ := writeShardInput(t, 4, 150, 11)
	dir := t.TempDir()
	single := filepath.Join(dir, "single.csv")
	if err := run("dbsvec", 3, 10, 0, 0, in, single, 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{}, shardFlags{}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(single)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3} {
		out := filepath.Join(dir, fmt.Sprintf("sharded%d.csv", shards))
		if err := run("dbsvec", 3, 10, 0, 0, in, out, 0, "linear", "f64", 1, 0, true,
			budgetFlags{}, modelFlags{}, shardFlags{shards: shards, par: 2}); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("shards=%d output differs from single-shot run", shards)
		}
	}
}

// TestRunShardMem drives the out-of-core path end to end for both binary
// precisions: the streamed labeled CSV must equal WriteCSV of the in-memory
// sharded run, and -savemodel must produce a loadable artifact.
func TestRunShardMem(t *testing.T) {
	_, rows := writeShardInput(t, 4, 150, 12)
	for _, prec := range []dbsvec.Precision{dbsvec.PrecisionF64, dbsvec.PrecisionF32} {
		ds, err := dbsvec.NewDataset(rows)
		if err != nil {
			t.Fatal(err)
		}
		if ds, err = ds.ToPrecision(prec); err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		bin := filepath.Join(dir, "in.bin")
		f, err := os.Create(bin)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteBinary(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		res, err := dbsvec.RunSharded(ds, dbsvec.Options{Eps: 3, MinPts: 10, Shards: 3})
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := ds.WriteCSV(&want, res); err != nil {
			t.Fatal(err)
		}

		out := filepath.Join(dir, "out.csv")
		modelPath := filepath.Join(dir, "model.bin")
		if err := run("dbsvec", 3, 10, 0, 0, bin, out, 0, "linear", "f64", 1, 0, true,
			budgetFlags{}, modelFlags{save: modelPath}, shardFlags{shards: 3, mem: true}); err != nil {
			t.Fatalf("%v: %v", prec, err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want.String() {
			t.Fatalf("%v: streamed CSV differs from in-memory sharded run", prec)
		}
		mf, err := os.Open(modelPath)
		if err != nil {
			t.Fatal(err)
		}
		m, err := dbsvec.LoadModel(mf)
		mf.Close()
		if err != nil {
			t.Fatal(err)
		}
		if m.Precision() != prec || m.Clusters() != res.Clusters {
			t.Fatalf("%v: saved model precision=%v clusters=%d, want %v/%d",
				prec, m.Precision(), m.Clusters(), prec, res.Clusters)
		}
	}
}

// TestRunShardErrors covers the sharded-mode flag validation.
func TestRunShardErrors(t *testing.T) {
	in := writeInput(t)
	if err := run("dbscan", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{}, shardFlags{shards: 2}); err == nil {
		t.Error("-shards with a non-dbsvec algorithm should error")
	}
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{load: "m.bin"}, shardFlags{shards: 2}); err == nil {
		t.Error("-loadmodel in sharded mode should error")
	}
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{}, shardFlags{mem: true}); err == nil {
		t.Error("-shardmem without -shards should error")
	}
	if err := run("dbsvec", 5, 5, 0, 0, "", "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{}, shardFlags{shards: 2, mem: true}); err == nil {
		t.Error("-shardmem without -in should error")
	}
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 100, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{}, shardFlags{shards: 2, mem: true}); err == nil {
		t.Error("-shardmem with -normalize should error")
	}
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 0, "linear", "f32", 1, 0, false,
		budgetFlags{}, modelFlags{}, shardFlags{shards: 2, mem: true}); err == nil {
		t.Error("-shardmem with -precision f32 should error")
	}
	// A CSV file is not a binary dataset.
	if err := run("dbsvec", 5, 5, 0, 0, in, "", 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{}, shardFlags{shards: 2, mem: true}); err == nil {
		t.Error("-shardmem on a CSV file should error")
	}
}

// TestRunAssignValidatesModelShape: -assign inputs that do not match the
// loaded model's dimensionality or storage precision are rejected up front
// with a typed ErrInvalidParams — before any assignment work, and with the
// mismatch spelled out — instead of producing garbage labels.
func TestRunAssignValidatesModelShape(t *testing.T) {
	in := writeInput(t)
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	if err := run("dbsvec", 5, 5, 0, 0, in, filepath.Join(dir, "out.csv"), 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{save: modelPath}, shardFlags{}); err != nil {
		t.Fatal(err)
	}

	// 3-d input against the 2-d model.
	in3 := filepath.Join(dir, "in3.csv")
	if err := os.WriteFile(in3, []byte("1,2,3\n4,5,6\n7,8,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run("dbsvec", 5, 5, 0, 0, in3, filepath.Join(dir, "out3.csv"), 0, "linear", "f64", 1, 0, false,
		budgetFlags{}, modelFlags{load: modelPath, assign: true}, shardFlags{})
	if !errors.Is(err, dbsvec.ErrInvalidParams) {
		t.Fatalf("3-d assign against 2-d model: err = %v, want ErrInvalidParams", err)
	}
	if err == nil || !strings.Contains(err.Error(), "dimension") {
		t.Fatalf("dim mismatch error does not name the mismatch: %v", err)
	}

	// f32 input against the f64-trained model.
	err = run("dbsvec", 5, 5, 0, 0, in, filepath.Join(dir, "out32.csv"), 0, "linear", "f32", 1, 0, false,
		budgetFlags{}, modelFlags{load: modelPath, assign: true}, shardFlags{})
	if !errors.Is(err, dbsvec.ErrInvalidParams) {
		t.Fatalf("f32 assign against f64 model: err = %v, want ErrInvalidParams", err)
	}
	if err == nil || !strings.Contains(err.Error(), "precision") {
		t.Fatalf("precision mismatch error does not name the mismatch: %v", err)
	}
}
