package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeInput(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "in.csv")
	var sb strings.Builder
	// Two tight clumps of 10 points each plus one outlier.
	for i := 0; i < 10; i++ {
		sb.WriteString("0.1,0.1\n")
		sb.WriteString("50.0,50.0\n")
	}
	sb.WriteString("500,500\n")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	in := writeInput(t)
	for _, algo := range []string{"dbsvec", "dbscan", "pdbscan", "rho", "lsh", "nq"} {
		out := filepath.Join(t.TempDir(), "out.csv")
		if err := run(algo, 5, 5, 0, 0, in, out, 0, "linear", 1, 0, false, budgetFlags{}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 21 {
			t.Fatalf("%s: wrote %d lines, want 21", algo, len(lines))
		}
		// Outlier must be noise for the density algorithms.
		if !strings.HasSuffix(lines[20], ",-1") {
			t.Errorf("%s: outlier line %q not labeled noise", algo, lines[20])
		}
	}
}

func TestRunKMeans(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := run("kmeans", 0, 0, 2, 0, in, out, 0, "linear", 1, 0, false, budgetFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndexKinds(t *testing.T) {
	in := writeInput(t)
	for _, idx := range []string{"linear", "kdtree", "rtree", "grid", "parallel", "pyramid", "vptree"} {
		out := filepath.Join(t.TempDir(), "out.csv")
		if err := run("dbscan", 5, 5, 0, 0, in, out, 0, idx, 1, 0, false, budgetFlags{}); err != nil {
			t.Fatalf("index %s: %v", idx, err)
		}
	}
}

func TestRunNormalize(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	// After normalization to [0,1000], eps must be rescaled accordingly;
	// eps=20 separates clumps at 0 and ~100 (of 1000).
	if err := run("dbsvec", 20, 5, 0, 0, in, out, 1000, "linear", 1, 0, true, budgetFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBudgetPartialOutput(t *testing.T) {
	in := writeInput(t)
	out := filepath.Join(t.TempDir(), "out.csv")
	// A tiny range-query budget trips mid-run; the CLI must still succeed
	// and write a full-length labeled file (best-effort partial clustering).
	if err := run("dbsvec", 5, 5, 0, 0, in, out, 0, "linear", 1, 0, true, budgetFlags{maxQueries: 1}); err != nil {
		t.Fatalf("budget trip must not fail the command: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 21 {
		t.Fatalf("wrote %d lines, want 21", len(lines))
	}
}

func TestRunErrors(t *testing.T) {
	in := writeInput(t)
	if err := run("bogus", 5, 5, 0, 0, in, "", 0, "linear", 1, 0, false, budgetFlags{}); err == nil {
		t.Error("unknown algorithm should error")
	}
	if err := run("dbscan", 5, 5, 0, 0, in, "", 0, "bogus", 1, 0, false, budgetFlags{}); err == nil {
		t.Error("unknown index should error")
	}
	if err := run("dbscan", 5, 5, 0, 0, "/nonexistent/file.csv", "", 0, "linear", 1, 0, false, budgetFlags{}); err == nil {
		t.Error("missing input file should error")
	}
	if err := run("dbscan", -5, 5, 0, 0, in, "", 0, "linear", 1, 0, false, budgetFlags{}); err == nil {
		t.Error("invalid eps should error")
	}
}
