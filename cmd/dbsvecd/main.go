// Command dbsvecd serves saved DBSVEC model artifacts over HTTP/JSON: load
// one or more models trained and saved by cmd/dbsvec (-savemodel), then
// classify points against their retained SVDD boundaries under admission
// control, per-request deadlines, and graceful degradation.
//
// Usage:
//
//	dbsvecd -model clusters=model.bin [-model other=other.bin] [-addr :8008]
//	        [-capacity 4096] [-queue 64] [-maxwait 1s] [-retryafter 1s]
//	        [-timeout 5s] [-maxtimeout 30s] [-workers 0] [-drain 10s]
//	        [-maxbody 67108864]
//
// Endpoints:
//
//	POST /v1/assign          {"model": "clusters", "points": [[...], ...]}
//	                         → {"labels": [...], "clusters": k, "degraded": b}
//	                         (or {"point": [...]} for a single point;
//	                         "timeout_ms" overrides the default deadline)
//	GET  /v1/models          list loaded models
//	GET  /v1/models/{name}   inspect one model
//	PUT  /v1/models/{name}   hot-swap: body is a binary model artifact
//	DELETE /v1/models/{name} unload
//	GET  /healthz            liveness (always 200 while the process serves)
//	GET  /readyz             readiness (503 while draining or empty)
//	GET  /metrics            plaintext counters and gauges
//
// Robustness: requests beyond the admission capacity queue briefly and then
// shed as typed 429s with Retry-After; a request deadline that fires
// mid-assignment aborts the fan-out and returns a typed 504; sustained
// pressure steps assignment down to the nearest-SV path (responses carry
// "degraded": true); SIGTERM/SIGINT drains in-flight requests within -drain
// and exits 0 on a clean drain, 1 otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dbsvec"
	"dbsvec/internal/server"
)

// modelSpec is one -model flag value: name=path, or a bare path whose base
// name (extension stripped) becomes the model name.
type modelSpec struct {
	name, path string
}

func parseModelSpec(v string) (modelSpec, error) {
	name, path, found := strings.Cut(v, "=")
	if !found {
		path = v
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if i := strings.LastIndexByte(base, '.'); i > 0 {
			base = base[:i]
		}
		name = base
	}
	if name == "" || path == "" {
		return modelSpec{}, fmt.Errorf("invalid -model %q: want name=path or path", v)
	}
	return modelSpec{name: name, path: path}, nil
}

func main() {
	var (
		addr       = flag.String("addr", ":8008", "listen address")
		capacity   = flag.Int64("capacity", 0, "admission capacity in points in flight (0 = default 4096)")
		queue      = flag.Int("queue", 0, "admission queue length (0 = default 64)")
		maxWait    = flag.Duration("maxwait", 0, "max time a request may queue for admission (0 = default 1s)")
		retryAfter = flag.Duration("retryafter", 0, "backoff hint on 429 responses (0 = default 1s)")
		timeout    = flag.Duration("timeout", 0, "default per-request deadline (0 = default 5s)")
		maxTimeout = flag.Duration("maxtimeout", 0, "clamp on per-request timeout_ms (0 = default 30s)")
		workers    = flag.Int("workers", 0, "assign fan-out workers per request (0 = all CPUs)")
		drain      = flag.Duration("drain", 10*time.Second, "hard deadline for draining in-flight requests on SIGTERM")
		maxBody    = flag.Int64("maxbody", 0, "request body size limit in bytes (0 = default 64 MiB)")
	)
	var specs []modelSpec
	flag.Func("model", "model to serve, as name=path or path (repeatable, at least one required)", func(v string) error {
		ms, err := parseModelSpec(v)
		if err != nil {
			return err
		}
		specs = append(specs, ms)
		return nil
	})
	flag.Parse()

	cfg := server.Config{
		Capacity:       *capacity,
		MaxQueue:       *queue,
		MaxQueueWait:   *maxWait,
		RetryAfter:     *retryAfter,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Workers:        *workers,
		MaxBodyBytes:   *maxBody,
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	if err := run(cfg, *addr, specs, *drain, sigc, nil, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "dbsvecd: %v\n", err)
		os.Exit(1)
	}
}

// run builds the server, serves until a shutdown signal (or listener
// failure), drains, and returns nil exactly when the drain completed within
// its deadline. ready, when non-nil, receives the bound listen address once
// the server accepts connections (tests listen on :0).
func run(cfg server.Config, addr string, specs []modelSpec, drain time.Duration, sigc <-chan os.Signal, ready chan<- string, logw io.Writer) error {
	if len(specs) == 0 {
		return fmt.Errorf("at least one -model name=path is required")
	}
	s := server.New(cfg)
	for _, ms := range specs {
		m, err := loadModelFile(ms.path)
		if err != nil {
			return fmt.Errorf("loading model %q: %w", ms.name, err)
		}
		if s.SetModel(ms.name, m) {
			return fmt.Errorf("duplicate model name %q", ms.name)
		}
		fmt.Fprintf(logw, "dbsvecd: loaded model %q from %s (dim %d, %d clusters, %d support vectors)\n",
			ms.name, ms.path, m.Dim(), m.Clusters(), m.SupportVectors())
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "dbsvecd: serving %d model(s) on %s\n", len(specs), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case sig := <-sigc:
		fmt.Fprintf(logw, "dbsvecd: received %v, draining (deadline %s)\n", sig, drain)
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close()
			return fmt.Errorf("drain deadline exceeded: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(logw, "dbsvecd: drained cleanly")
		return nil
	}
}

func loadModelFile(path string) (*dbsvec.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dbsvec.LoadModel(f)
}
