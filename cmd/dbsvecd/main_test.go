package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"dbsvec"
	"dbsvec/internal/data"
	"dbsvec/internal/fault"
	"dbsvec/internal/leakcheck"
	"dbsvec/internal/server"
)

func TestParseModelSpec(t *testing.T) {
	for _, tc := range []struct {
		in, name, path string
		wantErr        bool
	}{
		{in: "clusters=/tmp/m.bin", name: "clusters", path: "/tmp/m.bin"},
		{in: "/models/prod.bin", name: "prod", path: "/models/prod.bin"},
		{in: "m.bin", name: "m", path: "m.bin"},
		{in: "=path", wantErr: true},
		{in: "name=", wantErr: true},
		{in: "", wantErr: true},
	} {
		ms, err := parseModelSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseModelSpec(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseModelSpec(%q): %v", tc.in, err)
			continue
		}
		if ms.name != tc.name || ms.path != tc.path {
			t.Errorf("parseModelSpec(%q) = %+v, want {%s %s}", tc.in, ms, tc.name, tc.path)
		}
	}
}

func TestRunRejectsBadSetup(t *testing.T) {
	sigc := make(chan os.Signal)
	if err := run(server.Config{}, "127.0.0.1:0", nil, time.Second, sigc, nil, io.Discard); err == nil {
		t.Error("run accepted an empty model list")
	}
	specs := []modelSpec{{name: "m", path: "/nonexistent/model.bin"}}
	if err := run(server.Config{}, "127.0.0.1:0", specs, time.Second, sigc, nil, io.Discard); err == nil {
		t.Error("run accepted a missing model file")
	}
	p := saveTestModel(t)
	dup := []modelSpec{{name: "m", path: p}, {name: "m", path: p}}
	if err := run(server.Config{}, "127.0.0.1:0", dup, time.Second, sigc, nil, io.Discard); err == nil {
		t.Error("run accepted duplicate model names")
	}
}

// saveTestModel trains a small model and writes its artifact to a temp file.
func saveTestModel(t testing.TB) string {
	t.Helper()
	raw := data.Blobs(1000, 2, 3, 2, 100, 0.05, 43)
	ds, err := dbsvec.FromFlat(append([]float64(nil), raw.Coords()...), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dbsvec.Cluster(ds, dbsvec.Options{Eps: 3, MinPts: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Model().Save(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunLifecycle is the daemon acceptance path: boot from a saved model
// file, serve assignments, then SIGTERM mid-burst with slow handling — the
// in-flight requests drain to completion, the daemon returns nil (exit 0),
// and no goroutines leak.
func TestRunLifecycle(t *testing.T) {
	leakcheck.Check(t)
	modelPath := saveTestModel(t)

	sigc := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	cfg := server.Config{Capacity: 64, DefaultTimeout: 5 * time.Second}
	go func() {
		done <- run(cfg, "127.0.0.1:0", []modelSpec{{name: "m", path: modelPath}},
			5*time.Second, sigc, ready, io.Discard)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()

	resp, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: status %d", resp.StatusCode)
	}

	assign := func() (int, []byte) {
		body, _ := json.Marshal(map[string]any{"point": []float64{0, 0}})
		resp, err := client.Post(base+"/v1/assign", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, []byte(err.Error())
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, out
	}
	if status, body := assign(); status != http.StatusOK {
		t.Fatalf("warm-up assign: status %d body %s", status, body)
	}

	// SIGTERM lands while slow-handled requests are in flight: every one of
	// them still completes (drain keeps their seats), and the daemon exits
	// cleanly.
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.HandlerSlow, fault.Always()))
	defer restore()
	const inflight = 8
	results := make(chan int, inflight)
	var started sync.WaitGroup
	for i := 0; i < inflight; i++ {
		started.Add(1)
		go func() {
			started.Done()
			status, _ := assign()
			results <- status
		}()
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the burst reach the handler stall
	sigc <- syscall.SIGTERM

	for i := 0; i < inflight; i++ {
		select {
		case status := <-results:
			// In-flight requests finish with 200; one that raced the drain
			// flip gets the typed 503. Nothing may hang or drop.
			if status != http.StatusOK && status != http.StatusServiceUnavailable {
				t.Errorf("in-flight request %d: status %d", i, status)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("request hung through drain")
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestRunDrainDeadline: a drain that cannot finish in time reports an error
// (exit 1) instead of hanging forever.
func TestRunDrainDeadline(t *testing.T) {
	modelPath := saveTestModel(t)
	sigc := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(server.Config{}, "127.0.0.1:0", []modelSpec{{name: "m", path: modelPath}},
			time.Nanosecond, sigc, ready, io.Discard)
	}()
	addr := <-ready
	// Hold a connection open with a never-finishing request body so Shutdown
	// cannot complete within the nanosecond drain budget.
	pr, pw := io.Pipe()
	defer pw.Close()
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		req, _ := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/assign", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	sigc <- syscall.SIGTERM
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("blown drain deadline reported a clean exit")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon hung past its drain deadline")
	}
	pw.CloseWithError(fmt.Errorf("test over"))
	<-reqDone
}
