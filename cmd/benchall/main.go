// Command benchall regenerates the paper's evaluation tables and figures
// (Section V) against this repository's implementations.
//
// Usage:
//
//	benchall [-exp fig6a] [-full] [-seed 1] [-budget 30s] [-list]
//
// By default every experiment runs in quick mode (reduced cardinalities so
// the suite finishes in minutes). -full approaches the paper's scales and
// can run for hours. -exp selects a single experiment by id.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dbsvec/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "run a single experiment id (default: all)")
		full   = flag.Bool("full", false, "use paper-scale cardinalities (slow)")
		seed   = flag.Int64("seed", 1, "random seed for data generation and algorithms")
		budget = flag.Duration("budget", 0, "per-run time budget before an algorithm is dropped from a sweep (0 = default)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Quick: !*full, Seed: *seed, Budget: *budget}
	start := time.Now()
	var err error
	if *exp == "" {
		err = experiments.RunAll(os.Stdout, cfg)
	} else {
		var e experiments.Experiment
		e, err = experiments.ByID(*exp)
		if err == nil {
			err = e.Run(os.Stdout, cfg)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ntotal harness time: %s\n", time.Since(start).Round(time.Millisecond))
}
