// Command benchall regenerates the paper's evaluation tables and figures
// (Section V) against this repository's implementations.
//
// Usage:
//
//	benchall [-exp fig6a] [-full] [-seed 1] [-budget 30s] [-runtimeout 0]
//	         [-workers 0] [-precision f64|f32]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	         [-svddjson BENCH_svdd.json] [-indexjson BENCH_index.json]
//	         [-highdimjson BENCH_highdim.json]
//	         [-baseline dir] [-list]
//
// By default every experiment runs in quick mode (reduced cardinalities so
// the suite finishes in minutes). -full approaches the paper's scales and
// can run for hours. -exp selects a single experiment by id. -workers sets
// the query-engine worker count used by DBSVEC runs (0 = all CPUs).
// -precision switches dataset generation to float32 point storage (f32);
// the svdd and index experiments additionally measure both storage modes
// regardless of the flag.
// -budget skips runs predicted (from prior samples) to be too slow, while
// -runtimeout arms a hard in-flight wall-clock budget on each DBSVEC run:
// a run that trips it contributes its best-effort partial clustering.
// -cpuprofile and -memprofile write pprof profiles covering the whole
// harness run, for feeding into `go tool pprof`.
// -baseline points at a directory holding committed BENCH_*.json snapshots;
// every report written by the run is shape-diffed against its committed
// counterpart (schema drift fails the run; values and lengths are free).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"dbsvec/internal/experiments"
	"dbsvec/internal/vec"
)

func main() {
	var (
		exp         = flag.String("exp", "", "run a single experiment id (default: all)")
		full        = flag.Bool("full", false, "use paper-scale cardinalities (slow)")
		seed        = flag.Int64("seed", 1, "random seed for data generation and algorithms")
		budget      = flag.Duration("budget", 0, "per-run time budget before an algorithm is dropped from a sweep (0 = default)")
		runTimeout  = flag.Duration("runtimeout", 0, "hard wall-clock budget per DBSVEC run; tripped runs report their partial clustering (0 = off)")
		workers     = flag.Int("workers", 0, "query-engine worker goroutines for DBSVEC runs (0 = all CPUs)")
		precision   = flag.String("precision", "f64", "point-storage precision for experiment datasets: f64 | f32")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the harness run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile at harness exit to this file")
		svddjson    = flag.String("svddjson", "BENCH_svdd.json", "path for the svdd experiment's machine-readable report (empty = skip)")
		indexjson   = flag.String("indexjson", "BENCH_index.json", "path for the index experiment's machine-readable report (empty = skip)")
		highdimjson = flag.String("highdimjson", "BENCH_highdim.json", "path for the highdim experiment's machine-readable report (empty = skip)")
		baseline    = flag.String("baseline", "", "directory holding committed BENCH_*.json baselines; written reports are shape-diffed against them")
		list        = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: start CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	prec, err := vec.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}

	cfg := experiments.Config{Quick: !*full, Seed: *seed, Budget: *budget, RunTimeout: *runTimeout, Workers: *workers, Precision: prec, SVDDJSONPath: *svddjson, IndexJSONPath: *indexjson, HighdimJSONPath: *highdimjson}
	start := time.Now()
	if *exp == "" {
		err = experiments.RunAll(os.Stdout, cfg)
	} else {
		var e experiments.Experiment
		e, err = experiments.ByID(*exp)
		if err == nil {
			err = e.Run(os.Stdout, cfg)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ntotal harness time: %s\n", time.Since(start).Round(time.Millisecond))

	if *baseline != "" {
		// A single-experiment run writes at most its own report; the other
		// default report paths may still name files that exist (the committed
		// baselines themselves when running from the repo root), so restrict
		// the check to reports this run could actually have produced.
		if *exp != "" {
			if *exp != "svdd" {
				*svddjson = ""
			}
			if *exp != "index" {
				*indexjson = ""
			}
			if *exp != "highdim" {
				*highdimjson = ""
			}
		}
		if err := checkBaselines(*baseline, *svddjson, *indexjson, *highdimjson); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		writeMemProfile(*memprofile)
	}
}

// checkBaselines shape-diffs each report the run actually wrote against its
// committed counterpart in dir. A report path that was skipped (empty flag)
// or not produced by the selected experiment is ignored, so `-exp index
// -baseline .` checks only the index report.
func checkBaselines(dir, svddjson, indexjson, highdimjson string) error {
	checked := 0
	for _, pair := range []struct{ report, name string }{
		{svddjson, "BENCH_svdd.json"},
		{indexjson, "BENCH_index.json"},
		{highdimjson, "BENCH_highdim.json"},
	} {
		if pair.report == "" {
			continue
		}
		if _, err := os.Stat(pair.report); err != nil {
			continue // experiment not selected this run
		}
		basePath := filepath.Join(dir, pair.name)
		if same, err := sameFile(pair.report, basePath); err == nil && same {
			return fmt.Errorf("-baseline %s: report %s IS the baseline; write the report elsewhere (e.g. -indexjson /tmp/%s)", dir, pair.report, pair.name)
		}
		if err := experiments.CheckBaseline(pair.report, basePath); err != nil {
			return err
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("-baseline %s: no reports were written to check", dir)
	}
	fmt.Printf("baseline check: %d report(s) match %s schemas\n", checked, dir)
	return nil
}

// sameFile reports whether two paths name the same underlying file, so the
// baseline check can refuse the degenerate self-comparison.
func sameFile(a, b string) (bool, error) {
	fa, err := os.Stat(a)
	if err != nil {
		return false, err
	}
	fb, err := os.Stat(b)
	if err != nil {
		return false, err
	}
	return os.SameFile(fa, fb), nil
}

func writeMemProfile(memprofile string) {
	f, err := os.Create(memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "benchall: write heap profile: %v\n", err)
		os.Exit(1)
	}
}
