// Command benchall regenerates the paper's evaluation tables and figures
// (Section V) against this repository's implementations.
//
// Usage:
//
//	benchall [-exp fig6a] [-full] [-seed 1] [-budget 30s] [-runtimeout 0]
//	         [-workers 0] [-precision f64|f32]
//	         [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	         [-json exp=path]... [-baseline dir] [-list]
//
// By default every experiment runs in quick mode (reduced cardinalities so
// the suite finishes in minutes). -full approaches the paper's scales and
// can run for hours. -exp selects a single experiment by id. -workers sets
// the query-engine worker count used by DBSVEC runs (0 = all CPUs).
// -precision switches dataset generation to float32 point storage (f32);
// the svdd and index experiments additionally measure both storage modes
// regardless of the flag.
// -json redirects one experiment's machine-readable report: it is
// repeatable, takes exp=path pairs (exp ∈ svdd, index, highdim, shard), and
// an empty path skips the report. Unredirected reports go to their default
// BENCH_<exp>.json. The old per-experiment flags -svddjson, -indexjson and
// -highdimjson remain as deprecated aliases; -json wins when both are given.
// -budget skips runs predicted (from prior samples) to be too slow, while
// -runtimeout arms a hard in-flight wall-clock budget on each DBSVEC run:
// a run that trips it contributes its best-effort partial clustering.
// -cpuprofile and -memprofile write pprof profiles covering the whole
// harness run, for feeding into `go tool pprof`.
// -baseline points at a directory holding committed BENCH_*.json snapshots;
// every report written by the run is shape-diffed against its committed
// counterpart (schema drift fails the run; values and lengths are free).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"dbsvec/internal/experiments"
	"dbsvec/internal/vec"
)

// reportExps lists the experiments with machine-readable reports, in the
// order the baseline check walks them.
var reportExps = []string{"svdd", "index", "highdim", "shard"}

// jsonFlag accumulates repeatable -json exp=path overrides.
type jsonFlag map[string]string

func (j jsonFlag) String() string {
	var parts []string
	for k, v := range j {
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (j jsonFlag) Set(v string) error {
	k, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want exp=path, got %q", v)
	}
	for _, e := range reportExps {
		if e == k {
			j[k] = path
			return nil
		}
	}
	return fmt.Errorf("unknown report experiment %q (have %v)", k, reportExps)
}

func main() {
	var (
		exp         = flag.String("exp", "", "run a single experiment id (default: all)")
		full        = flag.Bool("full", false, "use paper-scale cardinalities (slow)")
		seed        = flag.Int64("seed", 1, "random seed for data generation and algorithms")
		budget      = flag.Duration("budget", 0, "per-run time budget before an algorithm is dropped from a sweep (0 = default)")
		runTimeout  = flag.Duration("runtimeout", 0, "hard wall-clock budget per DBSVEC run; tripped runs report their partial clustering (0 = off)")
		workers     = flag.Int("workers", 0, "query-engine worker goroutines for DBSVEC runs (0 = all CPUs)")
		precision   = flag.String("precision", "f64", "point-storage precision for experiment datasets: f64 | f32")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile of the harness run to this file")
		memprofile  = flag.String("memprofile", "", "write a heap profile at harness exit to this file")
		svddjson    = flag.String("svddjson", "BENCH_svdd.json", "deprecated alias for -json svdd=path")
		indexjson   = flag.String("indexjson", "BENCH_index.json", "deprecated alias for -json index=path")
		highdimjson = flag.String("highdimjson", "BENCH_highdim.json", "deprecated alias for -json highdim=path")
		baseline    = flag.String("baseline", "", "directory holding committed BENCH_*.json baselines; written reports are shape-diffed against them")
		list        = flag.Bool("list", false, "list experiment ids and exit")
	)
	jsonOverrides := jsonFlag{}
	flag.Var(jsonOverrides, "json", "redirect one report: exp=path with exp in svdd|index|highdim|shard (repeatable, empty path = skip)")
	flag.Parse()

	// Report paths: defaults, then the deprecated aliases (whose defaults are
	// the same standard paths), then any -json overrides.
	reports := map[string]string{
		"svdd":    *svddjson,
		"index":   *indexjson,
		"highdim": *highdimjson,
		"shard":   "BENCH_shard.json",
	}
	for k, v := range jsonOverrides {
		reports[k] = v
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: start CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	prec, err := vec.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}

	cfg := experiments.Config{
		Quick: !*full, Seed: *seed, Budget: *budget, RunTimeout: *runTimeout,
		Workers: *workers, Precision: prec,
		SVDDJSONPath:    reports["svdd"],
		IndexJSONPath:   reports["index"],
		HighdimJSONPath: reports["highdim"],
		ShardJSONPath:   reports["shard"],
	}
	start := time.Now()
	if *exp == "" {
		err = experiments.RunAll(os.Stdout, cfg)
	} else {
		var e experiments.Experiment
		e, err = experiments.ByID(*exp)
		if err == nil {
			err = e.Run(os.Stdout, cfg)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ntotal harness time: %s\n", time.Since(start).Round(time.Millisecond))

	if *baseline != "" {
		// A single-experiment run writes at most its own report; the other
		// default report paths may still name files that exist (the committed
		// baselines themselves when running from the repo root), so restrict
		// the check to reports this run could actually have produced.
		if *exp != "" {
			for _, e := range reportExps {
				if e != *exp {
					reports[e] = ""
				}
			}
		}
		if err := checkBaselines(*baseline, reports); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
	}

	if *memprofile != "" {
		writeMemProfile(*memprofile)
	}
}

// checkBaselines shape-diffs each report the run actually wrote against its
// committed counterpart in dir. A report path that was skipped (empty) or
// not produced by the selected experiment is ignored, so `-exp index
// -baseline .` checks only the index report.
func checkBaselines(dir string, reports map[string]string) error {
	checked := 0
	for _, exp := range reportExps {
		report := reports[exp]
		if report == "" {
			continue
		}
		if _, err := os.Stat(report); err != nil {
			continue // experiment not selected this run
		}
		name := "BENCH_" + exp + ".json"
		basePath := filepath.Join(dir, name)
		if same, err := sameFile(report, basePath); err == nil && same {
			return fmt.Errorf("-baseline %s: report %s IS the baseline; write the report elsewhere (e.g. -json %s=/tmp/%s)", dir, report, exp, name)
		}
		if err := experiments.CheckBaseline(report, basePath); err != nil {
			return err
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("-baseline %s: no reports were written to check", dir)
	}
	fmt.Printf("baseline check: %d report(s) match %s schemas\n", checked, dir)
	return nil
}

// sameFile reports whether two paths name the same underlying file, so the
// baseline check can refuse the degenerate self-comparison.
func sameFile(a, b string) (bool, error) {
	fa, err := os.Stat(a)
	if err != nil {
		return false, err
	}
	fb, err := os.Stat(b)
	if err != nil {
		return false, err
	}
	return os.SameFile(fa, fb), nil
}

func writeMemProfile(memprofile string) {
	f, err := os.Create(memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation stats
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "benchall: write heap profile: %v\n", err)
		os.Exit(1)
	}
}
