package dbsvec

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestClusterContextCancelled(t *testing.T) {
	ds, _ := NewDataset(blobRows(2000, 31))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the run must abort immediately
	_, err := ClusterContext(ctx, ds, Options{Eps: 4, MinPts: 8})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestClusterContextDeadline(t *testing.T) {
	ds, _ := NewDataset(blobRows(2000, 32))
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := ClusterContext(ctx, ds, Options{Eps: 4, MinPts: 8})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestClusterContextBackgroundSucceeds(t *testing.T) {
	ds, _ := NewDataset(blobRows(400, 33))
	res, err := ClusterContext(context.Background(), ds, Options{Eps: 4, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Errorf("clusters = %d, want 2", res.Clusters)
	}
}
