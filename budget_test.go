package dbsvec

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestClusterBudgetPartialResult(t *testing.T) {
	ds, _ := NewDataset(blobRows(2000, 41))
	res, err := ClusterContext(context.Background(), ds, Options{
		Eps: 4, MinPts: 8,
		Budget: Budget{MaxRangeQueries: 10},
	})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExceededError", err)
	}
	if res == nil {
		t.Fatal("budget trip must still return the partial clustering")
	}
	for i, l := range res.Labels {
		if l != Noise && (l < 0 || int(l) >= res.Clusters) {
			t.Fatalf("label[%d] = %d outside [0, %d) ∪ {Noise}", i, l, res.Clusters)
		}
	}
	if be.RangeQueries < 10 {
		t.Errorf("budget error snapshot %+v, want >= 10 queries", be)
	}
}

func TestClusterBudgetDurationWithTreeIndex(t *testing.T) {
	// A pre-expired duration budget must interrupt even the index build and
	// still produce a valid (all-noise) partial result.
	ds, _ := NewDataset(blobRows(2000, 42))
	res, err := ClusterContext(context.Background(), ds, Options{
		Eps: 4, MinPts: 8, Index: IndexKDTree,
		Budget: Budget{MaxDuration: time.Nanosecond},
	})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExceededError", err)
	}
	if be.Limit != "duration" {
		t.Errorf("Limit = %q, want duration", be.Limit)
	}
	if res == nil {
		t.Fatal("want partial result")
	}
	for i, l := range res.Labels {
		if l != Noise {
			t.Fatalf("label[%d] = %d, want all noise on an instantly expired budget", i, l)
		}
	}
}

func TestClusterBudgetDisabledZeroValue(t *testing.T) {
	ds, _ := NewDataset(blobRows(400, 43))
	res, err := Cluster(ds, Options{Eps: 4, MinPts: 8, Budget: Budget{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 || res.Stats.Degraded != 0 {
		t.Errorf("clusters = %d degraded = %d, want 2 and 0", res.Clusters, res.Stats.Degraded)
	}
}

func TestClusterInvalidParamsExported(t *testing.T) {
	ds, _ := NewDataset(blobRows(50, 44))
	_, err := Cluster(ds, Options{Eps: -1, MinPts: 8})
	if !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("err = %v, want ErrInvalidParams", err)
	}
	_, err = Cluster(ds, Options{Eps: 4, MinPts: 8, Budget: Budget{MaxSVDDRounds: -1}})
	if !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("err = %v, want ErrInvalidParams for negative budget", err)
	}
}
