package dbsvec

import (
	"dbsvec/internal/dbscan"
	"dbsvec/internal/kmeans"
	"dbsvec/internal/lsh"
	"dbsvec/internal/lshdbscan"
	"dbsvec/internal/nqdbscan"
	"dbsvec/internal/rhodbscan"
)

// DBSCAN runs exact DBSCAN (Ester et al. 1996) — the reference the paper
// measures every approximation against. The result's Stats.RangeQueries
// reflects the one-query-per-point cost of the exact algorithm.
func DBSCAN(d *Dataset, eps float64, minPts int, idx IndexKind) (*Result, error) {
	if d == nil {
		return nil, dbscan.ErrNilDataset
	}
	build, err := idx.builder(eps, d.Dim(), 1)
	if err != nil {
		return nil, err
	}
	res, st, err := dbscan.Run(d.ds, dbscan.Params{Eps: eps, MinPts: minPts}, build)
	if err != nil {
		return nil, err
	}
	out := wrapResult(res)
	out.Stats.RangeQueries = st.RangeQueries
	return out, nil
}

// DBSCANParallel runs exact DBSCAN with neighborhoods computed concurrently
// across all CPUs (two-phase disjoint-set formulation). Output matches
// DBSCAN up to border-point tie-breaking; noise is identical. workers <= 0
// selects GOMAXPROCS.
func DBSCANParallel(d *Dataset, eps float64, minPts int, idx IndexKind, workers int) (*Result, error) {
	if d == nil {
		return nil, dbscan.ErrNilDataset
	}
	build, err := idx.builder(eps, d.Dim(), workers)
	if err != nil {
		return nil, err
	}
	res, st, err := dbscan.RunParallel(d.ds, dbscan.Params{Eps: eps, MinPts: minPts}, build, workers)
	if err != nil {
		return nil, err
	}
	out := wrapResult(res)
	out.Stats.RangeQueries = st.RangeQueries
	out.Stats.Phases = st.Phases
	return out, nil
}

// RhoOptions configures RhoApproximate.
type RhoOptions struct {
	Eps    float64
	MinPts int
	// Rho is the approximation tolerance; 0 selects the paper's recommended
	// 0.001.
	Rho float64
}

// RhoApproximate runs ρ-approximate DBSCAN (Gan & Tao, SIGMOD 2015).
func RhoApproximate(d *Dataset, opts RhoOptions) (*Result, error) {
	if d == nil {
		return nil, dbscan.ErrNilDataset
	}
	if opts.Rho == 0 {
		opts.Rho = 0.001
	}
	res, _, err := rhodbscan.Run(d.ds, rhodbscan.Params{Eps: opts.Eps, MinPts: opts.MinPts, Rho: opts.Rho})
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// LSHOptions configures DBSCANLSH.
type LSHOptions struct {
	Eps    float64
	MinPts int
	// Tables (L) and Funcs (k) size the hash structure; zero selects 8
	// tables of 2 functions. Width 0 selects eps.
	Tables, Funcs int
	Width         float64
	Seed          int64
}

// DBSCANLSH runs the hashing-based approximate DBSCAN baseline (Li, Heinis
// & Luk, ADBIS 2016) on p-stable LSH.
func DBSCANLSH(d *Dataset, opts LSHOptions) (*Result, error) {
	if d == nil {
		return nil, dbscan.ErrNilDataset
	}
	res, _, err := lshdbscan.Run(d.ds, lshdbscan.Params{
		Eps:    opts.Eps,
		MinPts: opts.MinPts,
		Hash:   lsh.Params{Tables: opts.Tables, Funcs: opts.Funcs, Width: opts.Width, Seed: opts.Seed},
	})
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// NQDBSCAN runs the NQ-DBSCAN baseline (Chen et al., PR 2018): exact DBSCAN
// output with grid-pruned distance computations.
func NQDBSCAN(d *Dataset, eps float64, minPts int) (*Result, error) {
	if d == nil {
		return nil, dbscan.ErrNilDataset
	}
	res, _, err := nqdbscan.Run(d.ds, nqdbscan.Params{Eps: eps, MinPts: minPts})
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

// KMeansResult extends Result with the final cluster centers.
type KMeansResult struct {
	*Result
	// Centers holds the K final centroids.
	Centers [][]float64
	// Inertia is the final sum of squared distances to assigned centers.
	Inertia float64
}

// KMeans runs Lloyd's k-means with k-means++ seeding (the paper's Table IV
// baseline).
func KMeans(d *Dataset, k int, seed int64) (*KMeansResult, error) {
	if d == nil {
		return nil, kmeans.ErrNilDataset
	}
	res, centers, st, err := kmeans.Run(d.ds, kmeans.Params{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &KMeansResult{Result: wrapResult(res), Centers: centers, Inertia: st.Inertia}, nil
}
