package dbsvec

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func ringRows(n int, r float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		theta := rng.Float64() * 2 * math.Pi
		rr := r + rng.NormFloat64()*0.3
		rows[i] = []float64{rr * math.Cos(theta), rr * math.Sin(theta)}
	}
	return rows
}

func TestTrainOneClassBasics(t *testing.T) {
	ds, err := NewDataset(ringRows(300, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainOneClass(ds, OneClassOptions{Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SupportVectors()) == 0 {
		t.Fatal("no support vectors")
	}
	if m.Sigma() <= 0 {
		t.Errorf("sigma = %v", m.Sigma())
	}
	// A training point should be inside or near the boundary; a far point
	// outside.
	inside := 0
	for i := 0; i < ds.Len(); i++ {
		if m.Contains(ds.Point(i)) {
			inside++
		}
	}
	if frac := float64(inside) / float64(ds.Len()); frac < 0.8 {
		t.Errorf("only %.0f%% of training points inside the boundary", frac*100)
	}
	if m.Contains([]float64{100, 100}) {
		t.Error("far point classified as normal")
	}
	if m.Score([]float64{100, 100}) <= 0 {
		t.Error("far point should have positive score")
	}
}

func TestTrainOneClassErrors(t *testing.T) {
	if _, err := TrainOneClass(nil, OneClassOptions{}); err == nil {
		t.Error("nil dataset should error")
	}
	empty, _ := NewDataset(nil)
	if _, err := TrainOneClass(empty, OneClassOptions{}); err == nil {
		t.Error("empty dataset should error")
	}
	ds, _ := NewDataset([][]float64{{0, 0}, {1, 1}})
	if _, err := TrainOneClass(ds, OneClassOptions{Nu: 2}); err == nil {
		t.Error("nu > 1 should error")
	}
}

func TestTrainOneClassSigmaOverride(t *testing.T) {
	ds, _ := NewDataset(ringRows(200, 8, 2))
	m, err := TrainOneClass(ds, OneClassOptions{Nu: 0.1, Sigma: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sigma() != 2.5 {
		t.Errorf("sigma = %v, want 2.5", m.Sigma())
	}
}

func TestDBSCANParallelPublic(t *testing.T) {
	ds, _ := NewDataset(blobRows(600, 11))
	seq, err := DBSCAN(ds, 4, 8, IndexKDTree)
	if err != nil {
		t.Fatal(err)
	}
	par, err := DBSCANParallel(ds, 4, 8, IndexKDTree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if par.Clusters != seq.Clusters {
		t.Fatalf("clusters %d != %d", par.Clusters, seq.Clusters)
	}
	agree, err := NoiseAgreement(seq, par)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Errorf("noise agreement %v", agree)
	}
	if _, err := DBSCANParallel(nil, 4, 8, IndexLinear, 0); err == nil {
		t.Error("nil dataset should error")
	}
}

// TestOneClassSolveMetadata covers the surfaced solve introspection: a
// normal solve converges with a positive iteration count and records the ν
// actually used; a truncated solve reports Converged() == false alongside
// ErrNotConverged and a usable boundary.
func TestOneClassSolveMetadata(t *testing.T) {
	ds, err := NewDataset(ringRows(300, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainOneClass(ds, OneClassOptions{Nu: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged() {
		t.Error("full solve did not converge")
	}
	if m.Iterations() <= 0 {
		t.Errorf("Iterations = %d, want positive", m.Iterations())
	}
	if m.Nu() != 0.2 {
		t.Errorf("Nu = %v, want the configured 0.2", m.Nu())
	}

	trunc, err := TrainOneClass(ds, OneClassOptions{Nu: 0.2, MaxIter: 3})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("MaxIter=3: err = %v, want ErrNotConverged", err)
	}
	if trunc == nil {
		t.Fatal("truncated solve returned no model")
	}
	if trunc.Converged() {
		t.Error("truncated solve claims convergence")
	}
	if trunc.Iterations() > 3 {
		t.Errorf("truncated solve ran %d iterations past the cap", trunc.Iterations())
	}
}

// TestOneClassSaveLoad: the standalone model round-trips through the shared
// model codec — scores are bit-identical after reload, the solve metadata
// survives, and save → load → save is byte-identical.
func TestOneClassSaveLoad(t *testing.T) {
	ds, err := NewDataset(ringRows(400, 8, 2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainOneClass(ds, OneClassOptions{Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), buf.Bytes()...)
	loaded, err := LoadOneClass(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for q := 0; q < 200; q++ {
		x := []float64{rng.Float64()*30 - 15, rng.Float64()*30 - 15}
		if a, b := m.Score(x), loaded.Score(x); a != b {
			t.Fatalf("query %d: score drifted across save/load: %v != %v", q, a, b)
		}
	}
	a, b := m.SupportVectors(), loaded.SupportVectors()
	if len(a) != len(b) {
		t.Fatalf("SV count drifted: %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SV %d drifted", i)
		}
	}
	if loaded.Sigma() != m.Sigma() || loaded.Nu() != m.Nu() ||
		loaded.Converged() != m.Converged() || loaded.Iterations() != m.Iterations() {
		t.Fatal("solve metadata drifted across save/load")
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("save → load → save is not byte-identical")
	}
}
