package dbsvec

import (
	"math"
	"math/rand"
	"testing"
)

func ringRows(n int, r float64, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		theta := rng.Float64() * 2 * math.Pi
		rr := r + rng.NormFloat64()*0.3
		rows[i] = []float64{rr * math.Cos(theta), rr * math.Sin(theta)}
	}
	return rows
}

func TestTrainOneClassBasics(t *testing.T) {
	ds, err := NewDataset(ringRows(300, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainOneClass(ds, OneClassOptions{Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SupportVectors()) == 0 {
		t.Fatal("no support vectors")
	}
	if m.Sigma() <= 0 {
		t.Errorf("sigma = %v", m.Sigma())
	}
	// A training point should be inside or near the boundary; a far point
	// outside.
	inside := 0
	for i := 0; i < ds.Len(); i++ {
		if m.Contains(ds.Point(i)) {
			inside++
		}
	}
	if frac := float64(inside) / float64(ds.Len()); frac < 0.8 {
		t.Errorf("only %.0f%% of training points inside the boundary", frac*100)
	}
	if m.Contains([]float64{100, 100}) {
		t.Error("far point classified as normal")
	}
	if m.Score([]float64{100, 100}) <= 0 {
		t.Error("far point should have positive score")
	}
}

func TestTrainOneClassErrors(t *testing.T) {
	if _, err := TrainOneClass(nil, OneClassOptions{}); err == nil {
		t.Error("nil dataset should error")
	}
	empty, _ := NewDataset(nil)
	if _, err := TrainOneClass(empty, OneClassOptions{}); err == nil {
		t.Error("empty dataset should error")
	}
	ds, _ := NewDataset([][]float64{{0, 0}, {1, 1}})
	if _, err := TrainOneClass(ds, OneClassOptions{Nu: 2}); err == nil {
		t.Error("nu > 1 should error")
	}
}

func TestTrainOneClassSigmaOverride(t *testing.T) {
	ds, _ := NewDataset(ringRows(200, 8, 2))
	m, err := TrainOneClass(ds, OneClassOptions{Nu: 0.1, Sigma: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sigma() != 2.5 {
		t.Errorf("sigma = %v, want 2.5", m.Sigma())
	}
}

func TestDBSCANParallelPublic(t *testing.T) {
	ds, _ := NewDataset(blobRows(600, 11))
	seq, err := DBSCAN(ds, 4, 8, IndexKDTree)
	if err != nil {
		t.Fatal(err)
	}
	par, err := DBSCANParallel(ds, 4, 8, IndexKDTree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if par.Clusters != seq.Clusters {
		t.Fatalf("clusters %d != %d", par.Clusters, seq.Clusters)
	}
	agree, err := NoiseAgreement(seq, par)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Errorf("noise agreement %v", agree)
	}
	if _, err := DBSCANParallel(nil, 4, 8, IndexLinear, 0); err == nil {
		t.Error("nil dataset should error")
	}
}
